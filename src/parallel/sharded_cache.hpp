// A lock-striped memo table for concurrent workers.
//
// The assessment engine's workload is many parallel cells looking up /
// inserting immutable results keyed by content fingerprints. A single
// mutex around one hash map would serialize the hot path; full
// lock-free machinery would be unauditable overkill. Lock striping is
// the middle ground this repo favors (see thread_pool.hpp): the key
// space is split over N independently-locked shards, so two workers
// collide only when their keys land on the same stripe.
//
// Semantics are memoization, not general caching: values for a key are
// assumed immutable (first writer wins; a racing duplicate insert is
// dropped), so readers can copy values out under the shard lock and
// never observe a torn update. When a capacity is set, each shard
// evicts its least-recently-used entry (lookup hits refresh recency) —
// correctness never depends on residency, only speed, but LRU keeps
// the hot working set resident under pressure and makes the victim
// deterministic for the eviction accounting.
//
// The table can be persisted: snapshot() serializes every entry under
// the stripe locks behind a checksummed, versioned header, and
// restore() loads such a snapshot back through the normal insert path.
// Stale (wrong version / scheme tag) or corrupt (bad magic, checksum,
// truncation) snapshots are rejected with util::CodecError, never
// trusted.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/serialize.hpp"

namespace easyc::par {

/// Counter snapshot of a cache's lifetime activity. hits/misses count
/// lookup() calls; evictions counts entries dropped to respect the
/// capacity bound; entries is the current resident count.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;

  uint64_t lookups() const { return hits + misses; }
  double hit_rate() const {
    const uint64_t n = lookups();
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
  /// Activity since an earlier snapshot of the same cache (counters
  /// are monotonic; `entries` stays the current value).
  CacheStats since(const CacheStats& earlier) const {
    CacheStats d;
    d.hits = hits - earlier.hits;
    d.misses = misses - earlier.misses;
    d.evictions = evictions - earlier.evictions;
    d.entries = entries;
    return d;
  }
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedCache {
 public:
  /// Snapshot container format (the header layout below). Bump when the
  /// header or entry framing changes shape.
  static constexpr uint32_t kSnapshotFormatVersion = 1;
  /// First bytes of every snapshot; anything else is not a snapshot.
  static constexpr std::string_view kSnapshotMagic = "EZCSNAP\n";

  /// `max_entries` == 0 means unbounded; otherwise the bound is
  /// enforced per shard (max_entries / num_shards, minimum 1), so the
  /// total resident count stays within ~max_entries.
  explicit ShardedCache(size_t num_shards = 16, size_t max_entries = 0)
      : shards_(num_shards == 0 ? 1 : num_shards) {
    per_shard_cap_ =
        max_entries == 0 ? 0 : std::max<size_t>(1, max_entries / shards_.size());
  }

  ShardedCache(const ShardedCache&) = delete;
  ShardedCache& operator=(const ShardedCache&) = delete;

  /// Copy the value for `key` into `out` if resident. Counts one hit
  /// or one miss; on a capacity-bounded cache a hit also refreshes the
  /// entry's recency.
  bool lookup(const Key& key, Value& out) const {
    const Shard& shard = shard_for(key);
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.map.find(key);
      if (it != shard.map.end()) {
        // Recency only matters when eviction can happen; unbounded
        // caches skip the splice on the hot memoization path (their
        // snapshot order degrades to insertion order, which restore()
        // handles identically).
        if (per_shard_cap_ != 0) {
          shard.entries.splice(shard.entries.begin(), shard.entries,
                               it->second);
        }
        out = it->second->second;
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  /// Memoize `value` for `key`. First writer wins: if the key is
  /// already resident the call is a no-op (values per key are assumed
  /// identical, so dropping the duplicate is sound; recency is not
  /// refreshed — only real lookups are uses). At capacity, the shard's
  /// least-recently-used entry is evicted to make room.
  void insert(const Key& key, Value value) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.map.find(key) != shard.map.end()) return;
    if (per_shard_cap_ != 0 && shard.map.size() >= per_shard_cap_) {
      shard.map.erase(shard.entries.back().first);
      shard.entries.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.entries.emplace_front(key, std::move(value));
    shard.map.emplace(key, shard.entries.begin());
  }

  /// lookup(); on miss, compute (outside any lock — `make` may be
  /// expensive and may itself use the pool) and insert. Racing callers
  /// for one key may each compute, but all return identical values.
  template <typename Make>
  Value get_or_compute(const Key& key, Make&& make) {
    Value v;
    if (lookup(key, v)) return v;
    v = make();
    insert(key, v);
    return v;
  }

  size_t size() const {
    size_t n = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      n += s.map.size();
    }
    return n;
  }

  /// Drop all entries. Counters (hits/misses/evictions) keep running;
  /// take a stats() snapshot and diff with CacheStats::since instead.
  void clear() {
    for (Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      s.map.clear();
      s.entries.clear();
    }
  }

  CacheStats stats() const {
    CacheStats out;
    out.hits = hits_.load(std::memory_order_relaxed);
    out.misses = misses_.load(std::memory_order_relaxed);
    out.evictions = evictions_.load(std::memory_order_relaxed);
    out.entries = size();
    return out;
  }

  /// Serialize every resident entry. `scheme_tag` names the key/value
  /// scheme (fingerprint algorithm + value codec version); restore()
  /// refuses a snapshot whose tag differs, so a semantically stale file
  /// can never poison the cache. Layout:
  ///
  ///   magic "EZCSNAP\n"        8 bytes
  ///   format version           u32 (kSnapshotFormatVersion)
  ///   scheme tag               u64 (caller-defined)
  ///   entry count              u64
  ///   payload checksum         u64 (FNV-1a over the payload bytes)
  ///   payload                  count x (encode_key, encode_value)
  ///
  /// Shards are drained in index order under their stripe locks,
  /// least-recently-used entries first, so restore()'s inserts rebuild
  /// the same per-shard recency order.
  template <typename EncodeKey, typename EncodeValue>
  std::string snapshot(uint64_t scheme_tag, EncodeKey&& encode_key,
                       EncodeValue&& encode_value) const {
    util::BinaryWriter payload;
    uint64_t count = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      for (auto it = s.entries.rbegin(); it != s.entries.rend(); ++it) {
        encode_key(payload, it->first);
        encode_value(payload, it->second);
        ++count;
      }
    }
    util::BinaryWriter out;
    out.raw(kSnapshotMagic);
    out.u32(kSnapshotFormatVersion);
    out.u64(scheme_tag);
    out.u64(count);
    out.u64(util::checksum64(payload.bytes()));
    out.raw(payload.bytes());
    return out.bytes();
  }

  /// Load a snapshot() buffer through the normal insert path (resident
  /// keys win over snapshot entries; capacity eviction applies).
  /// Returns the number of entries the snapshot carried. Throws
  /// util::CodecError on bad magic, a format/scheme mismatch, a
  /// checksum failure, truncation, or trailing bytes.
  template <typename DecodeKey, typename DecodeValue>
  size_t restore(std::string_view bytes, uint64_t scheme_tag,
                 DecodeKey&& decode_key, DecodeValue&& decode_value) {
    util::BinaryReader r(bytes);
    if (r.raw(kSnapshotMagic.size()) != kSnapshotMagic) {
      throw util::CodecError("not a cache snapshot (bad magic)");
    }
    const uint32_t version = r.u32();
    if (version != kSnapshotFormatVersion) {
      throw util::CodecError(
          "snapshot format version " + std::to_string(version) +
          ", expected " + std::to_string(kSnapshotFormatVersion));
    }
    const uint64_t tag = r.u64();
    if (tag != scheme_tag) {
      throw util::CodecError(
          "snapshot was written under a different key/value scheme "
          "(stale fingerprint algorithm or codec); refusing to load");
    }
    const uint64_t count = r.u64();
    const uint64_t checksum = r.u64();
    if (checksum != util::checksum64(r.rest())) {
      throw util::CodecError("snapshot payload checksum mismatch");
    }
    for (uint64_t i = 0; i < count; ++i) {
      Key key = decode_key(r);
      Value value = decode_value(r);
      insert(std::move(key), std::move(value));
    }
    if (!r.exhausted()) {
      throw util::CodecError("snapshot has trailing bytes after " +
                             std::to_string(count) + " entries");
    }
    return static_cast<size_t>(count);
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Recency order: front = most recently used. The map points into
    /// the list; both are guarded by `mu` (mutable so lookup-on-const
    /// can refresh recency under the lock).
    mutable std::list<std::pair<Key, Value>> entries;
    std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                       Hash>
        map;
  };

  const Shard& shard_for(const Key& key) const {
    return shards_[Hash{}(key) % shards_.size()];
  }
  Shard& shard_for(const Key& key) {
    return shards_[Hash{}(key) % shards_.size()];
  }

  std::vector<Shard> shards_;
  size_t per_shard_cap_ = 0;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace easyc::par
