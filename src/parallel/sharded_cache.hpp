// A lock-striped memo table for concurrent workers.
//
// The assessment engine's workload is many parallel cells looking up /
// inserting immutable results keyed by content fingerprints. A single
// mutex around one hash map would serialize the hot path; full
// lock-free machinery would be unauditable overkill. Lock striping is
// the middle ground this repo favors (see thread_pool.hpp): the key
// space is split over N independently-locked shards, so two workers
// collide only when their keys land on the same stripe.
//
// Semantics are memoization, not general caching: values for a key are
// assumed immutable (first writer wins; a racing duplicate insert is
// dropped), so readers can copy values out under the shard lock and
// never observe a torn update. Eviction, when a capacity is set, may
// drop any entry — correctness never depends on residency, only speed.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace easyc::par {

/// Counter snapshot of a cache's lifetime activity. hits/misses count
/// lookup() calls; evictions counts entries dropped to respect the
/// capacity bound; entries is the current resident count.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;

  uint64_t lookups() const { return hits + misses; }
  double hit_rate() const {
    const uint64_t n = lookups();
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
  /// Activity since an earlier snapshot of the same cache (counters
  /// are monotonic; `entries` stays the current value).
  CacheStats since(const CacheStats& earlier) const {
    CacheStats d;
    d.hits = hits - earlier.hits;
    d.misses = misses - earlier.misses;
    d.evictions = evictions - earlier.evictions;
    d.entries = entries;
    return d;
  }
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedCache {
 public:
  /// `max_entries` == 0 means unbounded; otherwise the bound is
  /// enforced per shard (max_entries / num_shards, minimum 1), so the
  /// total resident count stays within ~max_entries.
  explicit ShardedCache(size_t num_shards = 16, size_t max_entries = 0)
      : shards_(num_shards == 0 ? 1 : num_shards) {
    per_shard_cap_ =
        max_entries == 0 ? 0 : std::max<size_t>(1, max_entries / shards_.size());
  }

  ShardedCache(const ShardedCache&) = delete;
  ShardedCache& operator=(const ShardedCache&) = delete;

  /// Copy the value for `key` into `out` if resident. Counts one hit
  /// or one miss.
  bool lookup(const Key& key, Value& out) const {
    const Shard& shard = shard_for(key);
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.map.find(key);
      if (it != shard.map.end()) {
        out = it->second;
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  /// Memoize `value` for `key`. First writer wins: if the key is
  /// already resident the call is a no-op (values per key are assumed
  /// identical, so dropping the duplicate is sound).
  void insert(const Key& key, Value value) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (per_shard_cap_ != 0 && shard.map.size() >= per_shard_cap_ &&
        shard.map.find(key) == shard.map.end()) {
      // Capacity: drop an arbitrary resident entry. Any victim is
      // correct (a future miss just recomputes), so no LRU bookkeeping.
      shard.map.erase(shard.map.begin());
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.map.emplace(key, std::move(value));
  }

  /// lookup(); on miss, compute (outside any lock — `make` may be
  /// expensive and may itself use the pool) and insert. Racing callers
  /// for one key may each compute, but all return identical values.
  template <typename Make>
  Value get_or_compute(const Key& key, Make&& make) {
    Value v;
    if (lookup(key, v)) return v;
    v = make();
    insert(key, v);
    return v;
  }

  size_t size() const {
    size_t n = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      n += s.map.size();
    }
    return n;
  }

  /// Drop all entries. Counters (hits/misses/evictions) keep running;
  /// take a stats() snapshot and diff with CacheStats::since instead.
  void clear() {
    for (Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      s.map.clear();
    }
  }

  CacheStats stats() const {
    CacheStats out;
    out.hits = hits_.load(std::memory_order_relaxed);
    out.misses = misses_.load(std::memory_order_relaxed);
    out.evictions = evictions_.load(std::memory_order_relaxed);
    out.entries = size();
    return out;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, Value, Hash> map;
  };

  const Shard& shard_for(const Key& key) const {
    return shards_[Hash{}(key) % shards_.size()];
  }
  Shard& shard_for(const Key& key) {
    return shards_[Hash{}(key) % shards_.size()];
  }

  std::vector<Shard> shards_;
  size_t per_shard_cap_ = 0;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace easyc::par
