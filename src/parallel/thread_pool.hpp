// A fixed-size thread pool with a single locked deque.
//
// The workloads in this repository (Monte-Carlo uncertainty trials,
// per-system model sweeps, ablation grids) are embarrassingly parallel
// with coarse task granularity, so a simple mutex-protected queue is the
// right tool: contention is negligible once tasks are chunked (see
// parallel_for), and the implementation stays auditable.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace easyc::par {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means hardware_concurrency()
  /// (minimum 1).
  explicit ThreadPool(unsigned num_threads = 0);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue a task; returns a future for its result. Exceptions thrown
  /// by the task are captured into the future.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        throw std::runtime_error("submit() on a stopping ThreadPool");
      }
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Process-wide default pool, lazily constructed with one worker per
  /// hardware thread. Intended for library-internal parallel_for calls;
  /// applications that need custom sizing construct their own pool.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace easyc::par
