#include "parallel/thread_pool.hpp"

#include <algorithm>

namespace easyc::par {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(0);
  return pool;
}

}  // namespace easyc::par
