// Data-parallel building blocks on top of ThreadPool.
//
// Chunking strategy: the index range is cut into ~4 chunks per worker so
// that mild load imbalance (e.g. accelerator-rich systems cost more to
// model than CPU-only ones) is absorbed without fine-grained queueing.
#pragma once

#include <algorithm>
#include <cstddef>
#include <future>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace easyc::par {

/// Invoke f(i) for every i in [begin, end) across the pool. Blocks until
/// complete. The body must not throw for indices it cannot handle —
/// exceptions propagate out of parallel_for after all chunks finish or
/// fail.
template <typename F>
void parallel_for(ThreadPool& pool, size_t begin, size_t end, F&& f) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t nchunks =
      std::min<size_t>(n, static_cast<size_t>(pool.size()) * 4);
  const size_t chunk = (n + nchunks - 1) / nchunks;

  std::vector<std::future<void>> futures;
  futures.reserve(nchunks);
  for (size_t c = 0; c < nchunks; ++c) {
    const size_t lo = begin + c * chunk;
    const size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    futures.push_back(pool.submit([lo, hi, &f] {
      for (size_t i = lo; i < hi; ++i) f(i);
    }));
  }
  // Collect all first so every chunk completes even if one throws; then
  // rethrow the first failure.
  std::exception_ptr first_error;
  for (auto& fut : futures) {
    try {
      fut.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

/// parallel_for on the process-global pool.
template <typename F>
void parallel_for(size_t begin, size_t end, F&& f) {
  parallel_for(ThreadPool::global(), begin, end, std::forward<F>(f));
}

/// Map f over [begin, end), materializing results in index order.
template <typename F>
auto parallel_map(ThreadPool& pool, size_t begin, size_t end, F&& f)
    -> std::vector<decltype(f(size_t{0}))> {
  using R = decltype(f(size_t{0}));
  std::vector<R> out(end > begin ? end - begin : 0);
  parallel_for(pool, begin, end,
               [&](size_t i) { out[i - begin] = f(i); });
  return out;
}

/// Reduction: combine f(i) over [begin, end) with `combine`, starting
/// from `init`. `combine` must be associative and commutative; each
/// chunk reduces locally and chunk results fold serially, so the result
/// is deterministic for exact operations and stable within floating
/// error for sums.
template <typename T, typename F, typename Combine>
T parallel_reduce(ThreadPool& pool, size_t begin, size_t end, T init, F&& f,
                  Combine&& combine) {
  if (begin >= end) return init;
  const size_t n = end - begin;
  const size_t nchunks =
      std::min<size_t>(n, static_cast<size_t>(pool.size()) * 4);
  const size_t chunk = (n + nchunks - 1) / nchunks;

  std::vector<std::future<T>> futures;
  for (size_t c = 0; c < nchunks; ++c) {
    const size_t lo = begin + c * chunk;
    const size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    futures.push_back(pool.submit([lo, hi, init, &f, &combine]() -> T {
      T acc = init;
      for (size_t i = lo; i < hi; ++i) acc = combine(acc, f(i));
      return acc;
    }));
  }
  T total = init;
  std::exception_ptr first_error;
  for (auto& fut : futures) {
    try {
      total = combine(total, fut.get());
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return total;
}

}  // namespace easyc::par
