#include "service/protocol.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>

#include "util/strings.hpp"

namespace easyc::service {
namespace {

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

Verb parse_verb(std::string_view token) {
  if (token == "ping") return Verb::kPing;
  if (token == "version") return Verb::kVersion;
  if (token == "assess") return Verb::kAssess;
  if (token == "turnover") return Verb::kTurnover;
  if (token == "sweep") return Verb::kSweep;
  if (token == "shutdown") return Verb::kShutdown;
  throw ProtocolError("unknown verb '" + std::string(token) +
                      "' (want ping, version, assess, turnover, sweep, or "
                      "shutdown)");
}

long long parse_positive_int(std::string_view key, std::string_view value) {
  const auto n = util::parse_int(value);
  if (!n || *n < 1) {
    throw ProtocolError(std::string(key) + "= wants a positive integer, got '" +
                        std::string(value) + "'");
  }
  return *n;
}

void validate_id(std::string_view value) {
  if (value.size() > kMaxRequestIdBytes) {
    throw ProtocolError("id= longer than " +
                        std::to_string(kMaxRequestIdBytes) + " bytes");
  }
  for (char c : value) {
    if (c < 0x21 || c > 0x7e) {
      throw ProtocolError("id= must be printable ASCII without whitespace");
    }
  }
}

}  // namespace

std::string_view verb_name(Verb verb) {
  switch (verb) {
    case Verb::kPing: return "ping";
    case Verb::kVersion: return "version";
    case Verb::kAssess: return "assess";
    case Verb::kTurnover: return "turnover";
    case Verb::kSweep: return "sweep";
    case Verb::kShutdown: return "shutdown";
  }
  return "?";
}

analysis::RefineOptions parse_refine(std::string_view text) {
  const auto at = text.find('@');
  if (at == std::string_view::npos) {
    throw util::ParseError("refine wants K@R (e.g. 2@2), got '" +
                           std::string(text) + "'");
  }
  const auto k = util::parse_int(util::trim(text.substr(0, at)));
  const auto r = util::parse_int(util::trim(text.substr(at + 1)));
  if (!k || *k < 1 || !r || *r < 1) {
    throw util::ParseError("refine K@R needs positive integers, got '" +
                           std::string(text) + "'");
  }
  analysis::RefineOptions refine;
  refine.top_axes = static_cast<size_t>(*k);
  refine.rounds = static_cast<size_t>(*r);
  return refine;
}

Request parse_request(std::string_view line) {
  const auto tokens = tokenize(line);
  if (tokens.empty()) throw ProtocolError("empty request");

  Request req;
  req.verb = parse_verb(tokens[0]);

  std::vector<std::string_view> seen;
  bool has_axes = false;
  for (size_t i = 1; i < tokens.size(); ++i) {
    const std::string_view token = tokens[i];
    const auto eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw ProtocolError("token '" + std::string(token) +
                          "' is not key=value");
    }
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (std::find(seen.begin(), seen.end(), key) != seen.end()) {
      throw ProtocolError("duplicate key '" + std::string(key) + "'");
    }
    seen.push_back(key);
    if (value.empty()) {
      throw ProtocolError("key '" + std::string(key) + "' has an empty value");
    }

    if (key == "id") {
      validate_id(value);
      req.id = std::string(value);
      continue;
    }
    // Per-verb keys. Rejecting a key the verb ignores catches typos
    // ("assess axes=...") the same way the CLI's strict flags do.
    bool ok = false;
    switch (req.verb) {
      case Verb::kAssess:
        if (key == "scenario") {
          req.scenario = std::string(value);
          ok = true;
        } else if (key == "set") {
          req.overrides = std::string(value);
          ok = true;
        }
        break;
      case Verb::kTurnover:
        if (key == "editions") {
          const long long n = parse_positive_int(key, value);
          if (n < 2 || n > kMaxTurnoverEditions) {
            throw ProtocolError("editions= wants 2.." +
                                std::to_string(kMaxTurnoverEditions) +
                                " (growth needs a cycle), got '" +
                                std::string(value) + "'");
          }
          req.editions = static_cast<int>(n);
          ok = true;
        }
        break;
      case Verb::kSweep:
        if (key == "axes") {
          req.axes = std::string(value);
          has_axes = true;
          ok = true;
        } else if (key == "base") {
          req.base = std::string(value);
          ok = true;
        } else if (key == "batch") {
          req.batch = static_cast<size_t>(parse_positive_int(key, value));
          ok = true;
        } else if (key == "stats") {
          const auto mode = analysis::sweep_stats_mode_from_name(value);
          if (!mode) {
            throw ProtocolError("stats= wants exact, streaming, or auto; "
                                "got '" + std::string(value) + "'");
          }
          req.stats = *mode;
          ok = true;
        } else if (key == "records") {
          req.records = static_cast<size_t>(parse_positive_int(key, value));
          ok = true;
        } else if (key == "refine") {
          req.refine = parse_refine(value);
          ok = true;
        }
        break;
      case Verb::kPing:
      case Verb::kVersion:
      case Verb::kShutdown:
        break;
    }
    if (!ok) {
      throw ProtocolError("key '" + std::string(key) +
                          "' does not apply to '" +
                          std::string(verb_name(req.verb)) + "'");
    }
  }
  if (req.verb == Verb::kSweep && !has_axes) {
    throw ProtocolError("sweep needs axes=<spec> (e.g. axes=aci=25:600:6)");
  }
  return req;
}

std::string frame_reply(const Reply& reply) {
  std::string out = "reply " + reply.id + (reply.ok ? " ok " : " err ") +
                    std::to_string(reply.payload.size()) + "\n";
  out += reply.payload;
  for (const std::string& note : reply.notes) {
    std::string flat = note;
    std::replace(flat.begin(), flat.end(), '\n', ' ');
    out += "note " + reply.id + " " + flat + "\n";
  }
  const RequestStats& s = reply.stats;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "stats %s hits=%llu misses=%llu evictions=%llu entries=%llu "
                "cum-hits=%llu cum-misses=%llu served=%llu\n",
                reply.id.c_str(),
                static_cast<unsigned long long>(s.delta.hits),
                static_cast<unsigned long long>(s.delta.misses),
                static_cast<unsigned long long>(s.delta.evictions),
                static_cast<unsigned long long>(s.cumulative.entries),
                static_cast<unsigned long long>(s.cumulative.hits),
                static_cast<unsigned long long>(s.cumulative.misses),
                static_cast<unsigned long long>(s.served));
  out += buf;
  return out;
}

// ---------------------------------------------------------------------

long StringSource::read(char* buf, size_t max) {
  if (pos_ >= data_.size()) return 0;
  const size_t n = std::min(max, data_.size() - pos_);
  std::copy_n(data_.data() + pos_, n, buf);
  pos_ += n;
  return static_cast<long>(n);
}

long FdSource::read(char* buf, size_t max) {
  for (;;) {
    if (wake_fd_ >= 0) {
      pollfd fds[2] = {{fd_, POLLIN, 0}, {wake_fd_, POLLIN, 0}};
      const int rc = ::poll(fds, 2, -1);
      if (rc < 0) {
        if (errno == EINTR) return -1;
        return 0;
      }
      // The wake pipe is written once and never drained, so it stays
      // readable: after shutdown every poll returns immediately and
      // every session sees "interrupted" until it exits its loop.
      if (fds[1].revents != 0) return -1;
      if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    }
    const ssize_t got = ::read(fd_, buf, max);
    if (got >= 0) return static_cast<long>(got);
    if (errno == EINTR) return -1;
    return 0;
  }
}

LineReader::Event LineReader::next(std::string& line) {
  for (;;) {
    if (discarding_) {
      const size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        buffer_.erase(0, nl + 1);
        discarding_ = false;
        continue;
      }
      buffer_.clear();
    } else {
      const size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        line.assign(buffer_, 0, nl);
        buffer_.erase(0, nl + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        return Event::kLine;
      }
      if (buffer_.size() > max_line_) {
        discarding_ = true;
        return Event::kOverlong;
      }
    }
    if (eof_) {
      if (!buffer_.empty() && !discarding_) {
        line = std::move(buffer_);
        buffer_.clear();
        if (!line.empty() && line.back() == '\r') line.pop_back();
        return Event::kLine;
      }
      return Event::kEof;
    }
    char chunk[4096];
    const long got = source_.read(chunk, sizeof(chunk));
    if (got < 0) return Event::kInterrupted;
    if (got == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<size_t>(got));
  }
}

bool StringSink::send(std::string_view frame) {
  std::lock_guard<std::mutex> lock(mu_);
  data_.append(frame);
  return true;
}

std::string StringSink::take() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::move(data_);
}

bool FdSink::send(std::string_view frame) {
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_) return false;
  size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n =
        is_socket_
            ? ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL)
            : ::write(fd_, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      failed_ = true;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace easyc::service
