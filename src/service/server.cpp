#include "service/server.hpp"

#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <stdlib.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <utility>

#include "analysis/sweep_shard.hpp"
#include "analysis/turnover.hpp"
#include "easyc/codec.hpp"
#include "report/experiments.hpp"
#include "top500/generator.hpp"
#include "util/ascii.hpp"
#include "util/strings.hpp"

namespace easyc::service {
namespace {

std::string cache_note(const par::CacheStats& stats) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "Assessment cache: %llu hits / %llu misses (%.1f%% hit "
                "rate), %llu evictions, %llu resident",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                stats.hit_rate() * 100.0,
                static_cast<unsigned long long>(stats.evictions),
                static_cast<unsigned long long>(stats.entries));
  return buf;
}

}  // namespace

analysis::ScenarioSet default_scenarios() {
  auto set = analysis::ScenarioSet::paper_with_whatifs();
  set.add(analysis::scenarios::full_knowledge());
  return set;
}

struct AssessmentServer::SessionGate {
  std::mutex mu;
  std::condition_variable cv;
  size_t pending = 0;

  void add() {
    std::lock_guard<std::mutex> lock(mu);
    ++pending;
  }
  void done() {
    {
      std::lock_guard<std::mutex> lock(mu);
      --pending;
    }
    cv.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return pending == 0; });
  }
};

AssessmentServer::AssessmentServer(ServerOptions options)
    : options_(options),
      pool_(options.threads),
      engine_({.pool = &pool_,
               .cache_capacity = options.cache_capacity,
               .batch_kernel = options.batch_kernel}),
      scenarios_(default_scenarios()),
      records_(top500::generate_records()) {
  if (::pipe(wake_pipe_) != 0) {
    throw util::Error("cannot create server wake pipe");
  }
  const unsigned n = std::max(1u, options_.admission);
  executors_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
}

AssessmentServer::~AssessmentServer() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_closed_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : executors_) t.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
}

std::vector<std::string> AssessmentServer::warm_start() {
  std::vector<std::string> notes;
  if (options_.cache_file) {
    const std::string& path = *options_.cache_file;
    if (std::ifstream probe(path, std::ios::binary); probe) {
      try {
        const size_t n = engine_.load_cache(path);
        notes.push_back("cache warm-start: " + std::to_string(n) +
                        " entries from " + path);
      } catch (const util::Error& e) {
        // A cache is advisory: a stale/corrupt/unreadable snapshot costs
        // a cold start, never a wrong result or a failed one.
        notes.push_back("cache file " + path + " rejected (" + e.what() +
                        "); starting cold");
      }
    } else {
      notes.push_back("cache file " + path + " not found; starting cold");
    }
  }
  for (std::string& note : load_extra_snapshots(options_.cache_load)) {
    notes.push_back(std::move(note));
  }
  return notes;
}

std::vector<std::string> AssessmentServer::load_extra_snapshots(
    const std::vector<std::string>& paths) {
  std::vector<std::string> notes;
  for (const std::string& path : paths) {
    try {
      const size_t n = engine_.load_cache(path);
      notes.push_back("cache load: " + std::to_string(n) + " entries from " +
                      path);
    } catch (const util::Error& e) {
      // Same advisory posture as warm_start: restore() is additive and
      // rejects before mutating, so a bad extra snapshot costs nothing.
      notes.push_back("cache load " + path + " rejected (" + e.what() + ")");
    }
  }
  return notes;
}

std::vector<std::string> AssessmentServer::save_snapshot() {
  std::vector<std::string> notes;
  if (!options_.cache_file) return notes;
  const std::string& path = *options_.cache_file;
  try {
    engine_.save_cache(path);
    notes.push_back(
        "cache saved: " + std::to_string(engine_.cache_stats().entries) +
        " entries to " + path);
  } catch (const util::Error& e) {
    notes.push_back("warning: could not save cache to " + path + " (" +
                    e.what() + ")");
  }
  return notes;
}

Reply AssessmentServer::finish_reply(Reply reply,
                                     const par::CacheStats& before) {
  const par::CacheStats after = engine_.cache_stats();
  reply.stats.delta = after.since(before);
  reply.stats.cumulative = after;
  reply.stats.served = served_.fetch_add(1, std::memory_order_relaxed) + 1;
  return reply;
}

Reply AssessmentServer::error_reply(std::string_view id,
                                    const std::string& message) {
  Reply reply;
  reply.id = std::string(id);
  reply.ok = false;
  reply.payload = message;
  if (reply.payload.empty() || reply.payload.back() != '\n') {
    reply.payload += '\n';
  }
  return finish_reply(std::move(reply), engine_.cache_stats());
}

Reply AssessmentServer::execute(const Request& request,
                                analysis::SweepCellSink* sink) {
  Reply reply;
  reply.id = request.id.empty() ? "0" : request.id;
  const par::CacheStats before = engine_.cache_stats();
  try {
    switch (request.verb) {
      case Verb::kPing:
        do_ping(reply);
        break;
      case Verb::kVersion:
        do_version(reply);
        break;
      case Verb::kAssess:
        do_assess(request, reply);
        break;
      case Verb::kTurnover:
        do_turnover(request, reply);
        break;
      case Verb::kSweep:
        do_sweep(request, reply, sink);
        break;
      case Verb::kShutdown:
        reply.payload = "shutting down\n";
        break;
    }
  } catch (const util::Error& e) {
    reply.ok = false;
    reply.notes.clear();
    reply.payload = std::string(e.what()) + "\n";
  } catch (const std::exception& e) {
    reply.ok = false;
    reply.notes.clear();
    reply.payload = std::string("internal error: ") + e.what() + "\n";
  }
  Reply out = finish_reply(std::move(reply), before);
  // Flag after the reply is built so this request still gets a clean
  // frame; the session loop stops admitting afterwards.
  if (request.verb == Verb::kShutdown && out.ok) request_shutdown();
  return out;
}

Reply AssessmentServer::execute_line(std::string_view line,
                                     std::string_view default_id) {
  Request request;
  try {
    request = parse_request(line);
  } catch (const util::Error& e) {
    return error_reply(default_id, e.what());
  }
  if (request.id.empty()) request.id = std::string(default_id);
  return execute(request);
}

void AssessmentServer::do_ping(Reply& reply) { reply.payload = "pong\n"; }

void AssessmentServer::do_version(Reply& reply) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "easyc_serve protocol %u\n"
                "assessment-codec %u\n"
                "assessment-semantics %u\n"
                "cache-scheme-tag %016llx\n",
                kProtocolVersion, model::kAssessmentCodecVersion,
                model::kAssessmentSemanticsVersion,
                static_cast<unsigned long long>(
                    analysis::AssessmentEngine::cache_scheme_tag()));
  reply.payload = buf;
}

void AssessmentServer::do_assess(const Request& request, Reply& reply) {
  const std::string name =
      request.scenario.empty()
          ? std::string(analysis::scenarios::kEnhancedName)
          : request.scenario;
  analysis::ScenarioSpec spec = scenarios_.at(name);
  if (!request.overrides.empty()) {
    // set= reuses the sweep grammar pinned to one value per axis, so a
    // client overrides any what-if knob without a registry entry.
    const analysis::SweepSpec overrides =
        analysis::SweepSpec::parse(request.overrides, spec);
    if (overrides.monte_carlo) {
      throw ProtocolError("assess set= pins single values; mc= belongs to "
                          "sweep");
    }
    for (const analysis::AxisValues& axis : overrides.axes) {
      if (axis.values.size() != 1) {
        throw ProtocolError(
            "assess set= wants exactly one value per axis (" +
            std::string(analysis::axis_name(axis.axis)) + " lists " +
            std::to_string(axis.values.size()) + "); ranges belong to sweep");
      }
      spec = analysis::apply_axis(std::move(spec), axis.axis, axis.values[0]);
    }
  }
  analysis::ScenarioSet one;
  one.add(spec);
  const analysis::EditionAssessment edition = engine_.assess(records_, one);
  const analysis::ScenarioResults& r = edition.scenarios.front();

  reply.payload = "scenario: " + spec.name + " — " + spec.description + "\n";
  if (!request.overrides.empty()) {
    reply.payload += "overrides: " + request.overrides + "\n";
  }
  reply.payload += "systems: " + std::to_string(records_.size()) + "\n";
  reply.payload +=
      "coverage: operational " + std::to_string(r.coverage.operational) + "/" +
      std::to_string(r.coverage.total) + ", embodied " +
      std::to_string(r.coverage.embodied) + "/" +
      std::to_string(r.coverage.total) + "\n";
  reply.payload += "totals over covered systems: " +
                   util::format_double(r.total(true), 0) +
                   " MT CO2e/yr operational, " +
                   util::format_double(r.total(false), 0) + " MT embodied\n";
  char line[128];
  std::snprintf(line, sizeof(line),
                "annualized over a %.0f-year service life: %s MT CO2e/yr\n",
                spec.service_years,
                util::format_double(r.annualized_total_mt(), 0).c_str());
  reply.payload += line;
}

const std::vector<top500::ListEdition>& AssessmentServer::history(
    int editions) {
  std::lock_guard<std::mutex> lock(history_mu_);
  auto it = histories_.find(editions);
  if (it == histories_.end()) {
    top500::HistoryConfig cfg;
    cfg.editions = editions;
    it = histories_.emplace(editions, top500::generate_history(cfg)).first;
  }
  return it->second;
}

void AssessmentServer::do_turnover(const Request& request, Reply& reply) {
  if (request.editions < 2 || request.editions > kMaxTurnoverEditions) {
    throw ProtocolError("editions= wants 2.." +
                        std::to_string(kMaxTurnoverEditions));
  }
  top500::HistoryConfig cfg;
  cfg.editions = request.editions;
  char head[128];
  std::snprintf(head, sizeof(head),
                "simulating %d list editions (~%d entrants per cycle)...\n",
                cfg.editions, cfg.entrants_per_cycle);

  analysis::TurnoverOptions opts;
  opts.engine = &engine_;
  const analysis::TurnoverReport report =
      analysis::analyze_turnover(history(request.editions), opts);

  reply.payload = head;
  reply.payload +=
      report::turnover_summary(report, /*include_cache_stats=*/false);
  reply.payload += "\nProjection from the measured growth rates:\n";
  util::TextTable t({"Year", "Op kMT", "Emb kMT", "PFlop/s"});
  for (const analysis::ProjectionPoint& p :
       analysis::project_from_turnover(report)) {
    t.add_row({std::to_string(p.year),
               util::format_double(p.operational_kmt, 0),
               util::format_double(p.embodied_kmt, 0),
               util::format_double(p.perf_pflops, 0)});
  }
  reply.payload += t.render();
  reply.notes.push_back(cache_note(report.cache));
}

void AssessmentServer::do_sweep(const Request& request, Reply& reply,
                                analysis::SweepCellSink* sink) {
  const std::string base_name =
      request.base.empty() ? std::string(analysis::scenarios::kEnhancedName)
                           : request.base;
  const analysis::SweepSpec spec =
      analysis::SweepSpec::parse(request.axes, scenarios_.at(base_name));
  const size_t cells = spec.total_cells();

  const std::vector<top500::SystemRecord>* records = &records_;
  std::vector<top500::SystemRecord> limited;
  if (request.records && *request.records < records_.size()) {
    limited.assign(records_.begin(),
                   records_.begin() + static_cast<long>(*request.records));
    records = &limited;
  }

  if (cells > options_.max_sweep_cells) {
    if (options_.shard_workers >= 2 && !options_.shard_exec.empty()) {
      do_sweep_sharded(request, reply, sink, *records, spec, cells);
      return;
    }
    throw ProtocolError(
        "sweep expands to " + std::to_string(cells) +
        " cells; this server accepts at most " +
        std::to_string(options_.max_sweep_cells) +
        " per request — split the grid, raise --max-sweep-cells, or start "
        "the server with --shard-workers/--shard-exec to fan out");
  }
  reply.notes.push_back("expanding " + std::to_string(cells) +
                        " derived scenarios from '" + base_name + "'...");

  analysis::SweepEngine::Options opt;
  opt.engine = &engine_;
  if (request.batch) opt.batch_size = *request.batch;
  opt.stats = request.stats.value_or(analysis::SweepStatsMode::kAuto);
  // The payload renders from counters/summaries and refinement plans
  // from streamed marginals; retention off keeps one request's peak
  // memory at one batch no matter how many cells it expands to.
  opt.retain_cells = false;
  analysis::SweepEngine sweep(opt);
  const analysis::SweepReport report =
      request.refine ? sweep.run_adaptive(*records, spec, *request.refine, sink)
                     : sweep.run(*records, spec, sink);

  reply.payload = analysis::render_sweep_report(report);
  for (const analysis::RefinementRound& round : report.refinement) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "sweep round %zu: %zu cells, %llu hits / %llu misses "
                  "(%.1f%% hit rate)",
                  round.round, round.cells,
                  static_cast<unsigned long long>(round.cache.hits),
                  static_cast<unsigned long long>(round.cache.misses),
                  round.cache.hit_rate() * 100.0);
    reply.notes.push_back(buf);
  }
  reply.notes.push_back(cache_note(report.cache));
}

// The sharded backend: an oversized sweep fans out to shard_workers
// easyc_cli subprocesses (`--sweep-shard i/N`), each of which ships an
// EZPART partial plus a cache snapshot into a per-request temp
// directory; the server merges the partials into the same payload an
// in-process run renders and absorbs the snapshots into its own cache,
// so a follow-up request over the same grid is warm.
void AssessmentServer::do_sweep_sharded(
    const Request& request, Reply& reply, analysis::SweepCellSink* sink,
    const std::vector<top500::SystemRecord>& records,
    const analysis::SweepSpec& spec, size_t cells) {
  if (request.refine) {
    throw ProtocolError(
        "adaptive refinement cannot fan out to shard workers (rounds after "
        "the first depend on merged marginals) — drop refine= or raise "
        "--max-sweep-cells");
  }
  const unsigned workers = options_.shard_workers;

  // One fresh directory per request: workers never collide, and the
  // merge never picks up a stale partial from an earlier request.
  std::string parent = options_.shard_dir;
  if (parent.empty()) {
    // getenv is mt-unsafe only against a concurrent setenv; this
    // process never mutates its environment.
    const char* tmp = ::getenv("TMPDIR");  // NOLINT(concurrency-mt-unsafe)
    parent = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
  }
  std::string tmpl = parent + "/easyc-shard-XXXXXX";
  std::vector<char> tmpl_buf(tmpl.begin(), tmpl.end());
  tmpl_buf.push_back('\0');
  if (::mkdtemp(tmpl_buf.data()) == nullptr) {
    throw util::Error("cannot create shard working directory under " + parent);
  }
  const std::string dir(tmpl_buf.data());

  std::vector<std::string> partials, snapshots;
  const auto cleanup = [&]() {
    for (const std::string& p : partials) ::unlink(p.c_str());
    for (const std::string& p : snapshots) ::unlink(p.c_str());
    ::rmdir(dir.c_str());
  };

  try {
    const std::string base_name =
        request.base.empty() ? std::string(analysis::scenarios::kEnhancedName)
                             : request.base;
    std::vector<std::string> common = {
        options_.shard_exec,
        "--sweep=" + request.axes,
        "--sweep-base=" + base_name,
    };
    if (request.batch) {
      common.push_back("--sweep-batch=" + std::to_string(*request.batch));
    }
    if (request.stats) {
      common.push_back(
          "--sweep-stats=" +
          std::string(analysis::sweep_stats_mode_name(*request.stats)));
    }
    if (request.records) {
      common.push_back("--sweep-records=" + std::to_string(*request.records));
    }

    std::vector<pid_t> pids;
    for (unsigned i = 1; i <= workers; ++i) {
      const std::string part =
          dir + "/part" + std::to_string(i) + ".ezpart";
      const std::string snap = dir + "/shard" + std::to_string(i) + ".snap";
      partials.push_back(part);
      snapshots.push_back(snap);

      std::vector<std::string> args = common;
      args.push_back("--sweep-shard=" + std::to_string(i) + "/" +
                     std::to_string(workers));
      args.push_back("--shard-out=" + part);
      args.push_back("--cache-file=" + snap);
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);

      const pid_t pid = ::fork();
      if (pid < 0) {
        for (pid_t running : pids) {
          ::kill(running, SIGTERM);
          int ignored = 0;
          ::waitpid(running, &ignored, 0);
        }
        throw util::Error("cannot fork shard worker " + std::to_string(i) +
                          "/" + std::to_string(workers));
      }
      if (pid == 0) {
        ::execv(argv[0], argv.data());
        // Only reached when exec fails; _exit keeps the child from
        // running the server's destructors/atexit handlers.
        ::_exit(127);
      }
      pids.push_back(pid);
    }

    std::string failure;
    for (unsigned i = 0; i < pids.size(); ++i) {
      int status = 0;
      ::waitpid(pids[i], &status, 0);
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        const std::string what =
            WIFEXITED(status)
                ? "exit code " + std::to_string(WEXITSTATUS(status))
                : "signal " + std::to_string(WTERMSIG(status));
        if (failure.empty()) {
          failure = "shard worker " + std::to_string(i + 1) + "/" +
                    std::to_string(workers) + " failed (" + what + ")";
        }
      }
    }
    if (!failure.empty()) throw ProtocolError(failure);

    reply.notes.push_back("sweep sharded: " + std::to_string(cells) +
                          " cells over " + std::to_string(workers) +
                          " worker processes");

    analysis::MergeOptions merge_opt;
    merge_opt.sink = sink;
    const analysis::SweepReport report =
        analysis::merge_sweep_partials(partials, records, spec, merge_opt);

    // Ship the workers' cache state home: restore() is additive and
    // resident entries win, so this only fills holes.
    size_t absorbed = 0;
    for (const std::string& snap : snapshots) {
      try {
        absorbed += engine_.load_cache(snap);
      } catch (const util::Error&) {
        // Advisory, like every snapshot load: a worker that died after
        // writing its partial but mid-snapshot costs warmth, not the
        // merge.
      }
    }
    reply.notes.push_back(
        "absorbed " + std::to_string(absorbed) + " cache entries from " +
        std::to_string(snapshots.size()) + " shard snapshots");

    reply.payload = analysis::render_sweep_report(report);
    reply.notes.push_back(cache_note(report.cache));
  } catch (...) {
    cleanup();
    throw;
  }
  cleanup();
}

void AssessmentServer::enqueue(std::function<void()> job) {
  std::unique_lock<std::mutex> lock(queue_mu_);
  const size_t bound = std::max<size_t>(1, options_.admission) * 4;
  // Backpressure: a session that outruns the executors stalls here
  // (and, over TCP, stalls its client) instead of growing the queue
  // without bound. wait_for, not wait: request_shutdown() is
  // async-signal-safe and cannot notify a condition variable.
  while (!queue_closed_ && queue_.size() >= bound && !shutdown_requested()) {
    queue_space_cv_.wait_for(lock, std::chrono::milliseconds(50));
  }
  if (queue_closed_) {
    // Destructor raced a live session (a usage error); run inline so
    // the session's gate still resolves.
    lock.unlock();
    job();
    return;
  }
  queue_.push_back(std::move(job));
  queue_cv_.notify_one();
}

void AssessmentServer::executor_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return queue_closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_space_cv_.notify_one();
    job();
  }
}

void AssessmentServer::serve(ByteSource& in, ReplySink& out) {
  LineReader reader(in, options_.max_line_bytes);
  auto gate = std::make_shared<SessionGate>();
  uint64_t seq = 0;
  std::string line;
  bool stop = false;
  while (!stop) {
    const LineReader::Event event = reader.next(line);
    if (event == LineReader::Event::kEof) break;
    if (event == LineReader::Event::kInterrupted) {
      if (shutdown_requested()) break;
      continue;
    }
    if (event == LineReader::Event::kOverlong) {
      ++seq;
      out.send(frame_reply(error_reply(
          std::to_string(seq),
          "protocol error: request line exceeds " +
              std::to_string(options_.max_line_bytes) + " bytes")));
      continue;
    }
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    ++seq;
    Request request;
    try {
      request = parse_request(trimmed);
    } catch (const util::Error& e) {
      // One bad line costs one error reply, never the session: the
      // same rejection-matrix posture the snapshot codec takes.
      out.send(frame_reply(error_reply(std::to_string(seq), e.what())));
      continue;
    }
    if (request.id.empty()) request.id = std::to_string(seq);
    const bool is_shutdown = (request.verb == Verb::kShutdown);
    gate->add();
    enqueue([this, &out, request, gate] {
      out.send(frame_reply(execute(request)));
      gate->done();
    });
    if (is_shutdown) stop = true;
  }
  // Every admitted request replies before the session ends — a
  // shutdown or EOF never strands an in-flight reply.
  gate->wait();
}

uint16_t AssessmentServer::listen_tcp(uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw util::Error("cannot create TCP socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw util::Error("cannot bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(listen_fd_, 64) != 0) {
    throw util::Error("cannot listen on 127.0.0.1:" + std::to_string(port));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    throw util::Error("cannot read bound TCP port");
  }
  return ntohs(addr.sin_port);
}

void AssessmentServer::serve_tcp() {
  if (listen_fd_ < 0) {
    throw util::Error("serve_tcp() needs listen_tcp() first");
  }
  std::vector<std::thread> sessions;
  while (!shutdown_requested()) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // shutdown wake
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    sessions.emplace_back([this, conn] {
      FdSource source(conn, wake_pipe_[0]);
      FdSink sink(conn, /*is_socket=*/true);
      serve(source, sink);
      ::shutdown(conn, SHUT_RDWR);
      ::close(conn);
    });
  }
  for (std::thread& t : sessions) t.join();
}

void AssessmentServer::request_shutdown() {
  // Async-signal-safe by construction: a lock-free atomic store plus
  // one write to the wake pipe (never drained, so every poll on it
  // stays readable). No locks, no allocation, no condition variables.
  shutdown_.store(true, std::memory_order_release);
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

}  // namespace easyc::service
