// The long-lived assessment server: one hot AssessmentEngine +
// ShardedCache for the whole process life, answering the line protocol
// in protocol.hpp over any ByteSource/ReplySink pair (stdin/stdout,
// TCP sockets, in-memory strings for tests).
//
// This is the ROADMAP's "millions of users" shape: process startup,
// catalog generation, and the cache warm-start are paid once, in the
// constructor — every request after that is admission + (mostly)
// cache lookups. The CLI's --turnover/--sweep modes are the degenerate
// case: construct a server, execute one request, print, snapshot, exit
// — so the one-shot and daemon paths cannot drift apart.
//
// Concurrency model: session readers (one per connection) parse lines
// and enqueue jobs on a bounded queue; a fixed set of dedicated
// executor threads pops and runs them against the shared engine. The
// executors are real threads, NOT pool tasks — a request fans its
// batch work out over the shared par::ThreadPool and blocks on the
// results, which would deadlock if the requester itself occupied a
// pool worker. Replies go out whole-frame-atomically through the
// session's ReplySink, so concurrent completions interleave frames,
// never bytes.
//
// Determinism: a reply's payload is a pure function of the request
// (assessments are pure, sweep reductions iterate expansion order),
// so it is byte-identical cold, warm-started, or interleaved with
// other requests. Everything cache-dependent rides outside the
// payload (notes, stats trailer). Tests and the CI serve leg diff
// exactly this.
//
// Shutdown: request_shutdown() is async-signal-safe (an atomic store
// plus one write() to a never-drained wake pipe), so easyc_serve's
// SIGTERM handler can call it directly; every blocked read wakes,
// sessions stop admitting, in-flight requests complete and reply, and
// the caller snapshots the cache via save_snapshot() — the same
// atomic temp+rename path the CLI uses, so a snapshot is never left
// half-written.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "analysis/assessment_engine.hpp"
#include "analysis/scenario.hpp"
#include "parallel/thread_pool.hpp"
#include "service/protocol.hpp"
#include "top500/history.hpp"

namespace easyc::service {

/// The scenario registry every server (and the CLI) serves from: the
/// paper + what-if set plus the full-knowledge bound.
analysis::ScenarioSet default_scenarios();

struct ServerOptions {
  /// Worker threads of the shared pool (0 = hardware concurrency).
  unsigned threads = 0;
  /// Concurrent request executors. 1 serializes requests; more lets
  /// cheap requests (ping, warm assess) overtake a long sweep.
  unsigned admission = 2;
  /// Warm-start source and shutdown-snapshot target (nullopt = no
  /// persistence).
  std::optional<std::string> cache_file;
  analysis::AssessmentEngine::BatchKernel batch_kernel =
      analysis::AssessmentEngine::BatchKernel::kAuto;
  /// Resident cache bound (0 = unbounded).
  size_t cache_capacity = 0;
  size_t max_line_bytes = kDefaultMaxLineBytes;
  size_t max_sweep_cells = kDefaultMaxSweepCells;
  /// Extra snapshot files loaded (additively; resident entries win)
  /// during warm_start, after cache_file — the path by which a merge
  /// process re-absorbs the cache state shard workers shipped.
  std::vector<std::string> cache_load;
  /// Sweep requests expanding past max_sweep_cells fan out to this
  /// many worker subprocesses (the sharded backend) instead of being
  /// refused. 0 or 1 keeps the historical refusal; >= 2 requires
  /// shard_exec.
  unsigned shard_workers = 0;
  /// The easyc_cli binary workers run as (`--sweep-shard i/N`); must
  /// be set when shard_workers >= 2.
  std::string shard_exec;
  /// Directory for worker partials and cache snapshots (one fresh
  /// subdirectory per sharded request, removed afterwards). Empty =
  /// $TMPDIR or /tmp.
  std::string shard_dir;
};

class AssessmentServer {
 public:
  explicit AssessmentServer(ServerOptions options = {});
  ~AssessmentServer();

  AssessmentServer(const AssessmentServer&) = delete;
  AssessmentServer& operator=(const AssessmentServer&) = delete;

  /// Load options.cache_file into the engine if it exists; a missing,
  /// stale, or corrupt snapshot costs a cold start, never a failure.
  /// Returns human-readable notes (the CLI's historical stderr lines).
  std::vector<std::string> warm_start();

  /// Snapshot the cache to options.cache_file (atomic temp+rename).
  /// Never throws: a failed save only costs the next run its warm
  /// start. Returns notes as above.
  std::vector<std::string> save_snapshot();

  /// Execute one request synchronously on the calling thread. The
  /// deterministic payload, cache-dependent notes, and stats come back
  /// in the Reply; errors become ok=false replies, never exceptions.
  /// `sink` (optional, sweep only) receives every cell — the CLI's
  /// --cells-out path; cell streaming is not part of the wire
  /// protocol.
  Reply execute(const Request& request,
                analysis::SweepCellSink* sink = nullptr);

  /// Parse + execute one line; parse failures become err replies under
  /// `default_id`.
  Reply execute_line(std::string_view line, std::string_view default_id);

  /// Serve one session: read request lines from `in`, execute them
  /// concurrently on the executor threads, write reply frames to
  /// `out`. Returns after end-of-stream, a shutdown request, or
  /// request_shutdown() — always after every admitted request has
  /// replied. Blank lines and '#' comments are skipped (so scripted
  /// request mixes can be annotated).
  void serve(ByteSource& in, ReplySink& out);

  /// Bind a loopback TCP listener (port 0 = ephemeral); returns the
  /// bound port. Call before serve_tcp().
  uint16_t listen_tcp(uint16_t port);

  /// Accept loop: one session (and one reader thread) per connection,
  /// all sharing the executors and the engine. Returns after
  /// request_shutdown(), once every session has drained.
  void serve_tcp();

  /// Stop serving: async-signal-safe (atomic store + pipe write), so
  /// signal handlers may call it. In-flight requests still reply.
  void request_shutdown();
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Read end of the never-drained wake pipe, for external pollers.
  int wake_fd() const { return wake_pipe_[0]; }

  analysis::AssessmentEngine& engine() { return engine_; }
  const analysis::ScenarioSet& scenarios() const { return scenarios_; }
  /// The simulated record list every request assesses (the shard
  /// worker and merge paths must run over exactly this list).
  const std::vector<top500::SystemRecord>& records() const {
    return records_;
  }
  const ServerOptions& options() const { return options_; }
  uint64_t served() const { return served_.load(std::memory_order_relaxed); }

 private:
  struct SessionGate;

  std::vector<std::string> load_extra_snapshots(
      const std::vector<std::string>& paths);

  Reply finish_reply(Reply reply, const par::CacheStats& before);
  Reply error_reply(std::string_view id, const std::string& message);

  void do_ping(Reply& reply);
  void do_version(Reply& reply);
  void do_assess(const Request& request, Reply& reply);
  void do_turnover(const Request& request, Reply& reply);
  void do_sweep(const Request& request, Reply& reply,
                analysis::SweepCellSink* sink);
  void do_sweep_sharded(const Request& request, Reply& reply,
                        analysis::SweepCellSink* sink,
                        const std::vector<top500::SystemRecord>& records,
                        const analysis::SweepSpec& spec, size_t cells);

  const std::vector<top500::ListEdition>& history(int editions);

  void enqueue(std::function<void()> job);
  void executor_loop();

  ServerOptions options_;
  par::ThreadPool pool_;
  analysis::AssessmentEngine engine_;
  analysis::ScenarioSet scenarios_;
  std::vector<top500::SystemRecord> records_;

  std::mutex history_mu_;
  std::map<int, std::vector<top500::ListEdition>> histories_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::condition_variable queue_space_cv_;
  std::deque<std::function<void()>> queue_;
  bool queue_closed_ = false;
  std::vector<std::thread> executors_;

  std::atomic<uint64_t> served_{0};
  std::atomic<bool> shutdown_{false};
  int wake_pipe_[2] = {-1, -1};
  int listen_fd_ = -1;
};

}  // namespace easyc::service
