// Line-delimited request/reply protocol for the assessment server.
//
// A request is one text line: a verb followed by key=value tokens
// ("sweep axes=aci=25:600:6;pue=1.1,1.3 batch=32 id=7"). Values carry
// no whitespace — the scenario/axis grammars (SweepSpec::parse) are
// whitespace-free by construction, so one line is always one request
// and a framing desync can never smear two requests together.
//
// A reply is a sized frame so clients never parse payload content:
//
//   reply <id> ok|err <payload-bytes>\n
//   <payload-bytes bytes of payload>
//   note <id> <text>\n                (zero or more)
//   stats <id> hits=... served=...\n  (always last)
//
// Determinism contract: the *payload* is a pure function of the
// request — byte-identical whether the server is cold, warm-started
// from a snapshot, or interleaving the request with concurrent ones
// (CI diffs all three). Diagnostics that legitimately vary with cache
// state (warm-start lines, per-round hit rates) travel as `note`
// lines, and cache counters as the `stats` trailer, both outside the
// payload. Error replies are payloads too, and equally deterministic.
//
// This header also carries the transport primitives (ByteSource /
// LineReader / ReplySink): enough abstraction that tests drive a
// server session from strings while easyc_serve drives it from pipes
// and sockets, with a wake-pipe poll so a SIGTERM interrupts a
// blocking read instead of racing it.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/sweep.hpp"
#include "parallel/sharded_cache.hpp"
#include "util/error.hpp"

namespace easyc::service {

/// Bump when the request grammar or reply framing changes shape.
/// Distinct from model::kAssessmentCodecVersion (snapshot bytes) and
/// kAssessmentSemanticsVersion (model numbers): the `version` verb
/// reports all three so clients can pin whichever contract they need.
inline constexpr uint32_t kProtocolVersion = 1;

/// A request line longer than this is rejected (and the rest of the
/// physical line discarded) instead of buffered without bound.
inline constexpr size_t kDefaultMaxLineBytes = 64 * 1024;

/// A sweep request expanding past this many cells is rejected before
/// the first engine call — one client typo must not pin the shared
/// engine for hours.
inline constexpr size_t kDefaultMaxSweepCells = 1u << 20;

/// Turnover histories are memoized per edition count; the cap bounds
/// that memo (and one request's runtime).
inline constexpr int kMaxTurnoverEditions = 64;

/// Longest accepted `id=` token (printable ASCII, no whitespace).
inline constexpr size_t kMaxRequestIdBytes = 64;

class ProtocolError : public util::Error {
 public:
  explicit ProtocolError(const std::string& what)
      : Error("protocol error: " + what) {}
};

enum class Verb { kPing, kVersion, kAssess, kTurnover, kSweep, kShutdown };

std::string_view verb_name(Verb verb);

/// One parsed request. Fields beyond `id`/`verb` apply to the verbs
/// noted; parse_request rejects keys a verb does not take.
struct Request {
  /// Reply-matching token. Empty after parsing when the client sent no
  /// id= key; the session assigns its arrival sequence number then.
  std::string id;
  Verb verb = Verb::kPing;

  // assess: scenario=<registered name>, set=<single-valued axis spec>
  std::string scenario;
  std::string overrides;

  // turnover: editions=N (2..kMaxTurnoverEditions)
  int editions = 8;

  // sweep: axes=<SweepSpec grammar> (required), base=<registered name>,
  // batch=N, stats=auto|exact|streaming, records=N, refine=K@R
  std::string axes;
  std::string base;
  std::optional<size_t> batch;
  std::optional<analysis::SweepStatsMode> stats;
  std::optional<size_t> records;
  std::optional<analysis::RefineOptions> refine;
};

/// Parse one request line. Throws ProtocolError on an empty line, an
/// unknown verb, a token that is not key=value, an unknown/duplicate
/// key, or an out-of-range value. Scenario names and axis grammars are
/// validated at execution time (they need the scenario registry).
Request parse_request(std::string_view line);

/// "K@R" (e.g. "2@2"): K top axes, R rounds, both positive. Shared by
/// the protocol's refine= key and the CLI's --sweep-refine flag.
analysis::RefineOptions parse_refine(std::string_view text);

/// Cache/admission counters attached to every reply: what this request
/// did (`delta`, via CacheStats::since) and where the server stands
/// (`cumulative`, plus the served-request count). Deliberately outside
/// the payload — they differ cold vs warm while the payload must not.
struct RequestStats {
  par::CacheStats delta;
  par::CacheStats cumulative;
  uint64_t served = 0;
};

struct Reply {
  std::string id;
  bool ok = true;
  /// The deterministic bytes: a report for ok replies, a one-line
  /// message (trailing newline included) for err replies.
  std::string payload;
  /// Cache-state-dependent diagnostics, one line each (the CLI prints
  /// them to stderr; serve_client.py keeps them out of the diffed
  /// payload file).
  std::vector<std::string> notes;
  RequestStats stats;
};

/// Render the full reply frame (header, payload, notes, stats
/// trailer). Embedded newlines in notes are flattened to spaces so the
/// frame stays line-parseable no matter what an error message carries.
std::string frame_reply(const Reply& reply);

// ---------------------------------------------------------------------
// Transport primitives

/// Blocking byte stream with cooperative interruption: read() returns
/// >0 bytes, 0 at end of stream, or -1 when interrupted (wake pipe
/// readable or EINTR) — the caller checks its shutdown flag and either
/// retries or stops. Stream errors are end-of-stream: a vanished
/// client ends its session, nothing more.
class ByteSource {
 public:
  virtual ~ByteSource() = default;
  virtual long read(char* buf, size_t max) = 0;
};

/// In-memory source for tests and one-shot execution.
class StringSource : public ByteSource {
 public:
  explicit StringSource(std::string data) : data_(std::move(data)) {}
  long read(char* buf, size_t max) override;

 private:
  std::string data_;
  size_t pos_ = 0;
};

/// File-descriptor source. When `wake_fd` is >= 0 every read polls
/// {fd, wake_fd} first and reports -1 (interrupted) the moment the
/// wake pipe becomes readable — the server's shutdown path writes one
/// byte there and never drains it, so every blocked session wakes.
class FdSource : public ByteSource {
 public:
  explicit FdSource(int fd, int wake_fd = -1) : fd_(fd), wake_fd_(wake_fd) {}
  long read(char* buf, size_t max) override;

 private:
  int fd_;
  int wake_fd_;
};

/// Splits a ByteSource into request lines with a hard length bound.
class LineReader {
 public:
  enum class Event {
    kLine,         ///< `line` holds one request line (no terminator)
    kEof,          ///< stream ended
    kOverlong,     ///< line exceeded max_line; its remainder is skipped
    kInterrupted,  ///< source interrupted; caller checks shutdown
  };

  LineReader(ByteSource& source, size_t max_line)
      : source_(source), max_line_(max_line) {}

  /// Next event. Lines are terminated by '\n' (a trailing '\r' is
  /// stripped for telnet-style clients); a final unterminated line is
  /// still delivered before kEof. After kOverlong the reader discards
  /// through the offending line's newline, so the *next* request on
  /// the stream parses cleanly — one oversized request costs exactly
  /// one error reply, not the session.
  Event next(std::string& line);

 private:
  ByteSource& source_;
  size_t max_line_;
  std::string buffer_;
  bool discarding_ = false;
  bool eof_ = false;
};

/// Where reply frames go. send() writes one frame atomically with
/// respect to other senders (concurrent executors interleave whole
/// frames, never bytes) and returns false once the peer is gone —
/// failure is sticky, later frames are dropped silently: a client that
/// hung up mid-request loses its replies, not the server.
class ReplySink {
 public:
  virtual ~ReplySink() = default;
  virtual bool send(std::string_view frame) = 0;
};

/// In-memory sink for tests.
class StringSink : public ReplySink {
 public:
  bool send(std::string_view frame) override;
  std::string take();

 private:
  std::mutex mu_;
  std::string data_;
};

/// File-descriptor sink. `is_socket` routes writes through send(2)
/// with MSG_NOSIGNAL so a dead TCP peer yields EPIPE instead of
/// killing the process; pipe/stdout writers must ignore SIGPIPE
/// themselves (easyc_serve does).
class FdSink : public ReplySink {
 public:
  FdSink(int fd, bool is_socket) : fd_(fd), is_socket_(is_socket) {}
  bool send(std::string_view frame) override;
  bool failed() const { return failed_; }

 private:
  std::mutex mu_;
  int fd_;
  bool is_socket_;
  bool failed_ = false;
};

}  // namespace easyc::service
