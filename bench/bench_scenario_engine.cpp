// Scenario engine — assess the paper pair plus registered what-if
// scenarios concurrently and measure how the engine scales with the
// number of registered scenarios.
//
// The what-ifs are the knobs procurement studies keep asking for:
// a renewables-heavy grid, an extended 8-year amortization life, and
// declining to proxy unknown accelerators.
#include "bench/common.hpp"

#include "analysis/scenario.hpp"
#include "report/experiments.hpp"

namespace {

namespace analysis = easyc::analysis;

std::string engine_report() {
  analysis::PipelineConfig cfg;
  cfg.scenarios = analysis::ScenarioSet::paper_with_whatifs();
  const auto r = analysis::run_pipeline(cfg);

  std::string out = "Scenario engine — registered what-if scenarios\n";
  out += easyc::report::scenario_summary(r);
  out += "  renewables-grid shrinks the operational total; extended "
         "lifetime shrinks the annualized\n  total; strict accelerator "
         "handling gives up embodied coverage. All scenarios share one\n"
         "  record list and run concurrently on the pool.\n";
  return out;
}

void BM_Engine_ScenarioCount(benchmark::State& state) {
  const auto all = analysis::ScenarioSet::paper_with_whatifs();
  analysis::ScenarioSet set;
  for (size_t i = 0; i < static_cast<size_t>(state.range(0)); ++i) {
    set.add(all.specs()[i]);
  }
  analysis::PipelineConfig cfg;
  cfg.scenarios = set;
  for (auto _ : state) {
    auto r = analysis::run_pipeline(cfg);
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(BM_Engine_ScenarioCount)->Arg(2)->Arg(3)->Arg(5)->Unit(
    benchmark::kMillisecond);

}  // namespace

EASYC_FIGURE_BENCH_MAIN(engine_report())
