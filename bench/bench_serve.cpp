// Serving-path throughput of the assessment server: what one warm
// easyc_serve process sustains on a single core, measured at the same
// boundary the daemon serves from (request line in, framed reply out).
//
// Gated counters (tools/check_bench_regression.py vs
// bench/baseline.json, taskset -c 0 in CI):
//   BM_ServePing        requests_per_s — the protocol floor: parse,
//                       dispatch, stats trailer, frame; no engine work.
//                       This is the per-request overhead the service
//                       layer adds to every assessment.
//   BM_ServeWarmAssess  requests_per_s — a full `assess` against the
//                       warm cache: 500 record lookups, report
//                       rendering, framing. The ROADMAP's service
//                       scenario ("assessments become cache lookups")
//                       priced per request.
//
// One worker thread: the warm path is lookup-bound and CI pins the
// measurement to one core, so pool fan-out would only add noise.
#include <benchmark/benchmark.h>

// easyc-lint: allow(pragma-suppression) GCC through 12 flags C++20
// designated initializers ({.threads = 1}) as missing-field-initializers
// even though every omitted ServerOptions member has a default member
// initializer (GCC PR96868, fixed in 13); silenced file-wide, same as
// tests/serve_server_test.cpp.
#pragma GCC diagnostic ignored "-Wmissing-field-initializers"

#include <string>

#include "service/protocol.hpp"
#include "service/server.hpp"

namespace {

using easyc::service::AssessmentServer;
using easyc::service::Reply;

AssessmentServer& warm_server() {
  static AssessmentServer* kServer = [] {
    auto* server = new AssessmentServer({.threads = 1, .admission = 1});
    // Pay the cold fill once; every timed request after this is warm.
    const Reply reply = server->execute_line("assess", "warmup");
    if (!reply.ok) std::abort();
    return server;
  }();
  return *kServer;
}

void BM_ServePing(benchmark::State& state) {
  AssessmentServer& server = warm_server();
  for (auto _ : state) {
    const std::string frame =
        easyc::service::frame_reply(server.execute_line("ping", "0"));
    benchmark::DoNotOptimize(frame.data());
  }
  state.counters["requests_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServePing)->UseRealTime()->Unit(benchmark::kMicrosecond);

void BM_ServeWarmAssess(benchmark::State& state) {
  AssessmentServer& server = warm_server();
  for (auto _ : state) {
    const Reply reply = server.execute_line("assess", "0");
    if (!reply.ok) state.SkipWithError("assess failed");
    const std::string frame = easyc::service::frame_reply(reply);
    benchmark::DoNotOptimize(frame.data());
  }
  state.counters["requests_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServeWarmAssess)->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace

// No figure to reproduce here (like bench_sweep_stream): the subject is
// the serving machinery, so nothing but it should run in the process.
int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
