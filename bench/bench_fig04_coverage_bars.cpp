// Fig. 4 — Carbon footprint reporting coverage: GHG protocol vs EasyC
// under both data scenarios.
#include "bench/common.hpp"
#include "analysis/coverage.hpp"
#include "ghg/protocol.hpp"
#include "report/experiments.hpp"

namespace {

using easyc::bench::shared_pipeline;

void BM_CountCoverage(benchmark::State& state) {
  const auto& r = shared_pipeline();
  for (auto _ : state) {
    auto c = easyc::analysis::count_coverage(r.enhanced().assessments);
    benchmark::DoNotOptimize(&c);
  }
}
BENCHMARK(BM_CountCoverage);

void BM_GhgCoverageScan(benchmark::State& state) {
  const auto& r = shared_pipeline();
  for (auto _ : state) {
    auto g = easyc::analysis::ghg_protocol_coverage(r.records);
    benchmark::DoNotOptimize(&g);
  }
}
BENCHMARK(BM_GhgCoverageScan);

void BM_GhgMissingItemsAudit(benchmark::State& state) {
  easyc::ghg::ProtocolCalculator calc;
  easyc::ghg::Inventory partial;
  partial["s2.metered_kwh"] = 1e7;
  partial["s2.grid_aci_location"] = 400;
  for (auto _ : state) {
    auto missing = calc.missing_items(partial);
    benchmark::DoNotOptimize(missing.data());
  }
}
BENCHMARK(BM_GhgMissingItemsAudit);

}  // namespace

EASYC_FIGURE_BENCH_MAIN(easyc::report::fig04_coverage_bars(shared_pipeline()))
