// Million-cell streaming sweep: the perf target behind lazy expansion
// (SweepExpansion), the streaming reduction (SweepStatsMode), and the
// columnar binary export — a 1,000,007-cell grid swept on one worker
// with cell retention off, every cell flowing through a BinaryCellSink
// into a discarding stream.
//
// Gated counters (tools/check_bench_regression.py vs
// bench/baseline.json): cells_per_s (throughput) and peak_rss_mb
// (process peak RSS after the sweep). Retaining this grid instead
// would hold ~1e6 SweepCells (two heap strings each) plus three
// 1e6-double series for the exact reduction — the counter pins that
// the streamed run stays an order of magnitude below that.
//
// Unlike the other bench binaries this one defines its own main and
// never touches bench::shared_pipeline(): peak RSS is process-wide
// and monotone, so nothing but the sweep may contribute to it.
#include <benchmark/benchmark.h>

#include <streambuf>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "analysis/sweep.hpp"
#include "parallel/thread_pool.hpp"
#include "top500/generator.hpp"

namespace {

using easyc::analysis::AssessmentEngine;
using easyc::analysis::BinaryCellSink;
using easyc::analysis::SweepEngine;
using easyc::analysis::SweepSpec;

// 50 ACI x 50 PUE x 400 lifetime values = 1e6 grid cells (+ base and 6
// tornado endpoints). The lifetime axis never reaches the assessment
// fingerprint, so the memo cache holds 50x50 = 2500 distinct
// assessments per record — the engine-side memory is negligible and
// the measurement isolates the streaming machinery itself.
constexpr const char* kMillionSpec =
    "aci=0:800:50;pue=1.05:1.95:50;life=2:12:400";

// Generated systems assessed per cell. Small so the bench measures
// per-cell orchestration (expansion, reduction, export), which is what
// scales with cell count, not the per-record model kernel.
constexpr size_t kRecords = 8;

const std::vector<easyc::top500::SystemRecord>& records8() {
  static const auto kRecords8 = [] {
    auto all = easyc::top500::generate_records();
    all.resize(kRecords);
    return all;
  }();
  return kRecords8;
}

// Swallows every byte: the export pays full serialization cost without
// accumulating the ~100 MB file in memory (which would pollute the
// peak-RSS counter).
class NullBuf : public std::streambuf {
 protected:
  int_type overflow(int_type c) override {
    return traits_type::not_eof(c);
  }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    return n;
  }
};

double peak_rss_mb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KB on Linux
#endif
#else
  return 0.0;
#endif
}

void BM_SweepStream1M(benchmark::State& state) {
  const auto spec = SweepSpec::parse(kMillionSpec);
  const auto cells = static_cast<int64_t>(spec.total_cells());
  easyc::par::ThreadPool one(1);
  size_t assessed = 0;
  for (auto _ : state) {
    AssessmentEngine engine({.pool = &one});
    SweepEngine::Options opt;
    opt.engine = &engine;
    opt.batch_size = 1024;
    opt.retain_cells = false;  // the report renders from the stream
    NullBuf null;
    std::ostream devnull(&null);
    BinaryCellSink sink(devnull, 4096);
    const auto report = SweepEngine(opt).run(records8(), spec, &sink);
    sink.finish();
    assessed = report.total_cells;
    benchmark::DoNotOptimize(&report);
  }
  state.SetItemsProcessed(state.iterations() * cells);
  state.counters["cells_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * cells),
      benchmark::Counter::kIsRate);
  state.counters["peak_rss_mb"] = benchmark::Counter(peak_rss_mb());
  if (assessed != static_cast<size_t>(cells)) {
    state.SkipWithError("cell count mismatch");
  }
}
BENCHMARK(BM_SweepStream1M)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
