// Ablation — unknown-accelerator handling (DESIGN.md choice #3).
//
// The paper: "Approximating these accelerators with mainstream GPUs
// produces systematic underestimates of silicon size." This study runs
// the +public scenario under both policies and, for systems whose true
// accelerator IS in the catalog, compares the proxy estimate against the
// exact one to measure the bias directly.
#include "bench/common.hpp"

#include "analysis/scenario.hpp"
#include "easyc/embodied.hpp"
#include "hw/accelerator.hpp"
#include "util/ascii.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace {

using easyc::bench::shared_pipeline;
namespace model = easyc::model;

std::string ablation_report() {
  const auto& r = shared_pipeline();
  std::string out = "Ablation — unknown-accelerator policy\n";

  // Coverage under each policy.
  easyc::util::TextTable cov({"Policy", "Embodied covered (of 500)"});
  for (auto policy : {model::AcceleratorPolicy::kStrict,
                      model::AcceleratorPolicy::kApproximateWithMainstreamGpu}) {
    model::EasyCOptions opt;
    opt.embodied.accelerator_policy = policy;
    int covered = 0;
    for (const auto& rec : r.records) {
      auto in = to_inputs(rec, easyc::top500::DataVisibility::kTop500PlusPublic);
      if (model::assess_embodied(in, opt.embodied).ok()) ++covered;
    }
    cov.add_row({policy == model::AcceleratorPolicy::kStrict
                     ? "strict (decline)"
                     : "approximate (mainstream proxy)",
                 std::to_string(covered)});
  }
  out += cov.render();

  // Bias measurement: hide the identity of known accelerators, proxy
  // them, and compare against the exact estimate.
  std::vector<double> bias_pct;
  model::EmbodiedOptions approx;
  approx.accelerator_policy =
      model::AcceleratorPolicy::kApproximateWithMainstreamGpu;
  for (const auto& rec : r.records) {
    auto in = to_inputs(rec, easyc::top500::DataVisibility::kFullKnowledge);
    if (!in.has_accelerator() || !in.num_gpus) continue;
    if (!easyc::hw::find_accelerator(in.accelerator)) continue;
    const auto exact = model::assess_embodied(in, approx);
    auto hidden = in;
    hidden.accelerator = "undocumented accelerator";
    const auto proxied = model::assess_embodied(hidden, approx);
    if (!exact.ok() || !proxied.ok()) continue;
    bias_pct.push_back((proxied.value().gpu_mt - exact.value().gpu_mt) /
                       exact.value().gpu_mt * 100.0);
  }
  const auto s = easyc::util::summarize(bias_pct);
  out += "\nProxy bias on accelerator silicon carbon, over " +
         std::to_string(s.count) + " accelerated systems:\n";
  out += "  mean " + easyc::util::format_double(s.mean, 1) + "%  median " +
         easyc::util::format_double(s.median, 1) + "%  p05 " +
         easyc::util::format_double(s.p05, 1) + "%  p95 " +
         easyc::util::format_double(s.p95, 1) + "%\n";
  out += "  (negative = underestimate, confirming the paper's warning)\n";
  return out;
}

void BM_StrictVsApproximate(benchmark::State& state) {
  const auto& r = shared_pipeline();
  model::EmbodiedOptions opt;
  opt.accelerator_policy =
      state.range(0) == 0
          ? model::AcceleratorPolicy::kStrict
          : model::AcceleratorPolicy::kApproximateWithMainstreamGpu;
  auto in = to_inputs(r.records[0],
                      easyc::top500::DataVisibility::kTop500PlusPublic);
  for (auto _ : state) {
    auto b = model::assess_embodied(in, opt);
    benchmark::DoNotOptimize(&b);
  }
}
BENCHMARK(BM_StrictVsApproximate)->Arg(0)->Arg(1);

}  // namespace

EASYC_FIGURE_BENCH_MAIN(ablation_report())
