// Ablation — Monte-Carlo prior uncertainty and thread-pool scaling
// (DESIGN.md choices #2/#4).
//
// Quantifies how EasyC's priors (utilization, fab intensity, platform
// carbon, default storage) spread the fleet totals, and measures the
// parallel speedup of the trial loop.
#include "bench/common.hpp"

#include <chrono>

#include "analysis/scenario.hpp"
#include "easyc/uncertainty.hpp"
#include "util/ascii.hpp"
#include "util/strings.hpp"

namespace {

using easyc::bench::shared_pipeline;
namespace model = easyc::model;

std::vector<model::Inputs> enhanced_inputs() {
  const auto& r = shared_pipeline();
  std::vector<model::Inputs> inputs;
  for (const auto& rec : r.records) {
    inputs.push_back(
        to_inputs(rec, easyc::top500::DataVisibility::kTop500PlusPublic));
  }
  return inputs;
}

std::string ablation_report() {
  std::string out =
      "Ablation — Monte-Carlo uncertainty of the fleet totals\n";
  const auto inputs = enhanced_inputs();
  const auto options =
      easyc::analysis::scenarios::enhanced().to_options();

  easyc::util::TextTable t({"Trials", "Op mean (kMT)", "Op p05-p95 (kMT)",
                            "Emb mean (kMT)", "Emb p05-p95 (kMT)"});
  for (size_t trials : {32u, 128u, 512u}) {
    const auto u = model::run_uncertainty(inputs, options, {}, trials, 2024,
                                          &easyc::par::ThreadPool::global());
    auto fmt = [](double v) {
      return easyc::util::format_double(v / 1000.0, 0);
    };
    t.add_row({std::to_string(trials), fmt(u.operational_mt.mean),
               fmt(u.operational_mt.p05) + ".." + fmt(u.operational_mt.p95),
               fmt(u.embodied_mt.mean),
               fmt(u.embodied_mt.p05) + ".." + fmt(u.embodied_mt.p95)});
  }
  out += t.render();

  out += "\nThread-pool scaling (512 trials):\n";
  easyc::util::TextTable s({"Threads", "Seconds", "Speedup"});
  double t1 = 0.0;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    easyc::par::ThreadPool pool(threads);
    const auto start = std::chrono::steady_clock::now();
    auto u = model::run_uncertainty(inputs, options, {}, 512, 2024, &pool);
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (threads == 1) t1 = sec;
    s.add_row({std::to_string(threads),
               easyc::util::format_double(sec, 3),
               easyc::util::format_double(t1 / sec, 2) + "x"});
    benchmark::DoNotOptimize(&u);
  }
  out += s.render();
  out +=
      "  Results are bit-identical across thread counts (forked RNG "
      "streams per trial).\n";
  return out;
}

void BM_Uncertainty_Trials(benchmark::State& state) {
  static const auto inputs = enhanced_inputs();
  const auto options =
      easyc::analysis::scenarios::enhanced().to_options();
  for (auto _ : state) {
    auto u = model::run_uncertainty(inputs, options, {},
                                    static_cast<size_t>(state.range(0)),
                                    2024, &easyc::par::ThreadPool::global());
    benchmark::DoNotOptimize(&u);
  }
}
BENCHMARK(BM_Uncertainty_Trials)->Arg(16)->Arg(64)->Unit(
    benchmark::kMillisecond);

}  // namespace

EASYC_FIGURE_BENCH_MAIN(ablation_report())
