// Fig. 10 — Projected Top500 carbon footprint, 2024-2030.
#include "bench/common.hpp"
#include "analysis/projection.hpp"
#include "report/experiments.hpp"

namespace {

using easyc::bench::shared_pipeline;

void BM_Project(benchmark::State& state) {
  for (auto _ : state) {
    auto p = easyc::analysis::project(1390, 1880, 9500);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_Project);

}  // namespace

EASYC_FIGURE_BENCH_MAIN(easyc::report::fig10_projection(shared_pipeline()))
