// Headline numbers — the paper's abstract claims: 1.39M MT operational,
// 1.88M MT embodied, vehicle equivalences, and coverage percentages.
#include "bench/common.hpp"
#include "analysis/equivalence.hpp"
#include "report/experiments.hpp"

namespace {

using easyc::bench::shared_pipeline;

void BM_Equivalences(benchmark::State& state) {
  const auto& r = shared_pipeline();
  for (auto _ : state) {
    auto e = easyc::analysis::equivalences(r.op_total_full_mt);
    benchmark::DoNotOptimize(&e);
  }
}
BENCHMARK(BM_Equivalences);

}  // namespace

EASYC_FIGURE_BENCH_MAIN(easyc::report::headline_numbers(shared_pipeline()))
