// Fig. 7 — Total and average carbon for covered systems and the full
// interpolated Top500.
#include "bench/common.hpp"
#include "analysis/interpolate.hpp"
#include "report/experiments.hpp"
#include "util/stats.hpp"

namespace {

using easyc::bench::shared_pipeline;

void BM_InterpolateGaps(benchmark::State& state) {
  const auto& r = shared_pipeline();
  for (auto _ : state) {
    auto filled = easyc::analysis::interpolate_gaps(r.enhanced().embodied);
    benchmark::DoNotOptimize(filled.values.data());
  }
}
BENCHMARK(BM_InterpolateGaps);

void BM_KahanTotal(benchmark::State& state) {
  const auto& r = shared_pipeline();
  for (auto _ : state) {
    double total = easyc::util::sum(r.op_interpolated.values);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_KahanTotal);

}  // namespace

EASYC_FIGURE_BENCH_MAIN(easyc::report::fig07_totals(shared_pipeline()))
