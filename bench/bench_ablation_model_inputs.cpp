// Ablation — which of EasyC's 7 key metrics matters most (DESIGN.md
// choice #3), plus the utilization-prior sweep.
//
// Knock-out study: starting from full knowledge, remove one metric at a
// time for every system and measure how the fleet totals move. This is
// the quantitative version of the paper's Fig. 1 claim that seven
// well-chosen metrics carry the carbon signal.
#include "bench/common.hpp"

#include <functional>
#include <string>
#include <vector>

#include "easyc/model.hpp"
#include "util/ascii.hpp"
#include "util/strings.hpp"

namespace {

using easyc::bench::shared_pipeline;
namespace model = easyc::model;

std::vector<model::Inputs> full_inputs() {
  std::vector<model::Inputs> out;
  for (const auto& rec : shared_pipeline().records) {
    out.push_back(to_inputs(rec, easyc::top500::DataVisibility::kFullKnowledge));
  }
  return out;
}

struct Totals {
  double op = 0.0;
  double emb = 0.0;
  int op_covered = 0;
  int emb_covered = 0;
};

Totals assess(const std::vector<model::Inputs>& inputs,
              const model::EasyCOptions& opt) {
  model::EasyCModel m(opt);
  Totals t;
  for (const auto& a : m.assess_all(inputs)) {
    if (a.operational.ok()) {
      t.op += a.operational.value().mt_co2e;
      ++t.op_covered;
    }
    if (a.embodied.ok()) {
      t.emb += a.embodied.value().total_mt;
      ++t.emb_covered;
    }
  }
  return t;
}

std::string ablation_report() {
  std::string out =
      "Ablation — metric knock-out from full knowledge (fleet totals)\n";
  const auto base_inputs = full_inputs();
  model::EasyCOptions opt;
  opt.embodied.accelerator_policy =
      model::AcceleratorPolicy::kApproximateWithMainstreamGpu;
  const Totals base = assess(base_inputs, opt);

  struct KnockOut {
    const char* name;
    std::function<void(model::Inputs&)> remove;
  };
  const KnockOut knockouts[] = {
      {"# compute nodes", [](model::Inputs& i) { i.num_nodes.reset(); }},
      {"# GPUs", [](model::Inputs& i) { i.num_gpus.reset(); }},
      {"memory capacity", [](model::Inputs& i) { i.memory_gb.reset(); }},
      {"memory type", [](model::Inputs& i) { i.memory_type.reset(); }},
      {"SSD capacity", [](model::Inputs& i) { i.ssd_tb.reset(); }},
      {"utilization", [](model::Inputs& i) { i.utilization.reset(); }},
      {"annual energy",
       [](model::Inputs& i) { i.annual_energy_kwh.reset(); }},
      {"HPL power", [](model::Inputs& i) { i.power_kw.reset(); }},
  };

  easyc::util::TextTable t({"Removed metric", "Op covered", "Op delta (%)",
                            "Emb covered", "Emb delta (%)"});
  for (const auto& k : knockouts) {
    auto inputs = base_inputs;
    for (auto& in : inputs) k.remove(in);
    const Totals got = assess(inputs, opt);
    t.add_row(
        {k.name, std::to_string(got.op_covered),
         easyc::util::format_double((got.op - base.op) / base.op * 100, 2),
         std::to_string(got.emb_covered),
         easyc::util::format_double((got.emb - base.emb) / base.emb * 100,
                                    2)});
  }
  out += t.render();

  out += "\nUtilization-prior sweep (power-path systems, no metered "
         "utilization):\n";
  easyc::util::TextTable u({"Prior", "Op total (kMT)"});
  auto no_util = base_inputs;
  for (auto& in : no_util) {
    in.utilization.reset();
    in.annual_energy_kwh.reset();
  }
  for (double prior : {0.55, 0.65, 0.75, 0.85, 0.95}) {
    auto swept = opt;
    swept.operational.default_utilization = prior;
    const Totals got = assess(no_util, swept);
    u.add_row({easyc::util::format_double(prior, 2),
               easyc::util::format_double(got.op / 1000.0, 1)});
  }
  out += u.render();
  out += "  Reading: coverage (not magnitude) is what metrics buy — "
         "knocking out GPU\n  counts uncovers the accelerated fleet; "
         "knocking out SSD capacity shifts\n  embodied totals through the "
         "per-node default.\n";
  return out;
}

void BM_KnockoutAssessment(benchmark::State& state) {
  static const auto inputs = full_inputs();
  model::EasyCOptions opt;
  for (auto _ : state) {
    auto t = assess(inputs, opt);
    benchmark::DoNotOptimize(&t);
  }
}
BENCHMARK(BM_KnockoutAssessment)->Unit(benchmark::kMillisecond);

}  // namespace

EASYC_FIGURE_BENCH_MAIN(ablation_report())
