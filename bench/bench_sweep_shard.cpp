// Sweep sharding overhead: what a worker pays to stream an EZPART
// partial instead of folding in-process, and what the merge step pays
// to replay N partials back into one report. Both are informational
// (not gated): the gate on sharding is byte-identity, enforced by
// sweep_shard_test and the CI "sharded sweep determinism" leg; these
// counters exist so a codec change that makes partials an order of
// magnitude slower shows up in `make bench` output.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "analysis/sweep.hpp"
#include "analysis/sweep_shard.hpp"
#include "top500/generator.hpp"

namespace {

using easyc::analysis::MergeOptions;
using easyc::analysis::ShardRef;
using easyc::analysis::SweepEngine;
using easyc::analysis::SweepSpec;
using easyc::analysis::run_sweep_shard;

// ~5k grid cells + base + endpoints + draws: big enough that per-cell
// work dominates, small enough for a quick bench iteration.
constexpr const char* kSpecText =
    "aci=0:800:16;pue=1.05:1.95:16;life=2:12:20;mc=200@42";
constexpr size_t kRecords = 8;

const std::vector<easyc::top500::SystemRecord>& records8() {
  static const auto kList = [] {
    auto all = easyc::top500::generate_records();
    all.resize(kRecords);
    return all;
  }();
  return kList;
}

const SweepSpec& spec() {
  static const SweepSpec kSpec = SweepSpec::parse(kSpecText);
  return kSpec;
}

// One worker's partial, regenerated per iteration: cells assessed,
// reduced, and serialized through the EZPART codec.
void BM_ShardWorker(benchmark::State& state) {
  const auto ref = ShardRef{1, static_cast<uint32_t>(state.range(0))};
  size_t cells = 0;
  for (auto _ : state) {
    SweepEngine engine;
    std::ostringstream out;
    cells = run_sweep_shard(engine, records8(), spec(), ref, out);
    benchmark::DoNotOptimize(out.str().size());
  }
  state.counters["cells_per_s"] = benchmark::Counter(
      static_cast<double>(cells * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShardWorker)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// Merging N pre-built partials: pure replay + reduction, no
// assessment. The partial files are built once per run.
void BM_MergePartials(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  std::vector<std::string> paths;
  for (uint32_t i = 1; i <= n; ++i) {
    SweepEngine engine;
    char name[128];
    std::snprintf(name, sizeof(name), "/tmp/easyc-bench-%d-%u-%u.ezpart",
                  static_cast<int>(::getpid()), i, n);
    std::ofstream out(name, std::ios::binary | std::ios::trunc);
    run_sweep_shard(engine, records8(), spec(), ShardRef{i, n}, out);
    paths.push_back(name);
  }
  size_t cells = 0;
  for (auto _ : state) {
    const auto report = easyc::analysis::merge_sweep_partials(
        paths, records8(), spec(), MergeOptions{});
    cells = report.total_cells;
    benchmark::DoNotOptimize(report.base.annualized_mt);
  }
  for (const auto& p : paths) std::remove(p.c_str());
  state.counters["cells_per_s"] = benchmark::Counter(
      static_cast<double>(cells * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MergePartials)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
