// The scenario-grid sweep engine: cells/sec over a real axis grid,
// cold vs warm.
//
// Report: one moderate grid (4 ACI x 3 PUE x 3 utilization x 2
// lifetimes plus endpoints and base = 81 derived scenarios) swept over
// the full 500-system list on one worker, first with a cold memo cache
// and then again on the same engine. The warm pass is the steady state
// of iterating on a sweep (new axes over unchanged scenarios, a
// --cache-file restart): pure lookups, no model evaluations. The
// google-benchmark timings below feed the CI regression gate
// (tools/check_bench_regression.py vs bench/baseline.json).
#include "bench/common.hpp"

#include <chrono>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/sweep.hpp"
#include "parallel/thread_pool.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace {

using easyc::analysis::AssessmentEngine;
using easyc::analysis::SweepEngine;
using easyc::analysis::SweepSpec;
using easyc::util::format_double;

constexpr const char* kGridSpec =
    "aci=25:600:4;pue=1.1:1.6:3;util=0.5:0.9:3;life=4,8";

const std::vector<easyc::top500::SystemRecord>& records500() {
  static const auto kRecords = easyc::top500::generate_records();
  return kRecords;
}

std::string sweep_report() {
  const auto spec = SweepSpec::parse(kGridSpec);
  const size_t cells = spec.total_cells();
  easyc::par::ThreadPool one(1);
  AssessmentEngine engine({.pool = &one});
  SweepEngine::Options opt;
  opt.engine = &engine;
  SweepEngine sweep(opt);

  auto run_once = [&] {
    const auto t0 = std::chrono::steady_clock::now();
    const auto report = sweep.run(records500(), spec);
    const auto t1 = std::chrono::steady_clock::now();
    return std::make_pair(std::chrono::duration<double>(t1 - t0).count(),
                          report.cache.hit_rate());
  };
  const auto [t_cold, cold_rate] = run_once();
  const auto [t_warm, warm_rate] = run_once();

  const double n = static_cast<double>(cells);
  std::string out = "Scenario-grid sweep — " + std::to_string(cells) +
                    " derived scenarios x " +
                    std::to_string(records500().size()) +
                    " systems, 1 worker\n";
  out += "  spec: " + std::string(kGridSpec) + "\n";
  out += "  cold: " + format_double(t_cold * 1000, 1) + " ms (" +
         format_double(n / t_cold, 0) + " cells/sec, " +
         format_double(cold_rate * 100, 1) + "% hits)\n";
  out += "  warm: " + format_double(t_warm * 1000, 1) + " ms (" +
         format_double(n / t_warm, 0) + " cells/sec, " +
         format_double(warm_rate * 100, 1) + "% hits, " +
         format_double(t_cold / t_warm, 2) + "x)\n";

  // Adaptive refinement economics on a fresh engine: every round keeps
  // the previous values, so the refined rounds re-run the old grid as
  // cache lookups and only pay for the densified cells.
  {
    easyc::par::ThreadPool worker(1);
    AssessmentEngine fresh({.pool = &worker});
    SweepEngine::Options aopt;
    aopt.engine = &fresh;
    easyc::analysis::RefineOptions refine;
    refine.top_axes = 2;
    refine.rounds = 2;
    const auto report =
        SweepEngine(aopt).run_adaptive(records500(), spec, refine);
    out += "  adaptive (--sweep-refine 2@2):\n";
    for (const auto& round : report.refinement) {
      out += "    round " + std::to_string(round.round) + ": " +
             std::to_string(round.cells) + " cells, " +
             format_double(round.cache.hit_rate() * 100, 1) + "% hits\n";
    }
  }
  return out;
}

// Pure expansion: the grammar + cartesian generator without any
// assessment. This bounds how much of a sweep is orchestration.
void BM_SweepExpandGrid(benchmark::State& state) {
  const auto spec = SweepSpec::parse(kGridSpec);
  for (auto _ : state) {
    auto set = easyc::analysis::expand_sweep(spec);
    benchmark::DoNotOptimize(&set);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(spec.total_cells()));
}
BENCHMARK(BM_SweepExpandGrid)->Unit(benchmark::kMillisecond);

// Cold grid: a fresh engine per iteration, every distinct cell pays a
// model evaluation. items/sec = sweep cells per second.
void BM_SweepColdGrid(benchmark::State& state) {
  const auto spec = SweepSpec::parse(kGridSpec);
  for (auto _ : state) {
    SweepEngine sweep;
    auto report = sweep.run(records500(), spec);
    benchmark::DoNotOptimize(&report);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(spec.total_cells()));
}
BENCHMARK(BM_SweepColdGrid)->Unit(benchmark::kMillisecond);

// Warm grid: shared engine, primed cache — the memoized steady state.
void BM_SweepWarmGrid(benchmark::State& state) {
  const auto spec = SweepSpec::parse(kGridSpec);
  AssessmentEngine engine;
  SweepEngine::Options opt;
  opt.engine = &engine;
  SweepEngine sweep(opt);
  sweep.run(records500(), spec);  // prime
  for (auto _ : state) {
    auto report = sweep.run(records500(), spec);
    benchmark::DoNotOptimize(&report);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(spec.total_cells()));
}
BENCHMARK(BM_SweepWarmGrid)->Unit(benchmark::kMillisecond);

// The sweep reduction's summary kernel over a grid-sized sample, three
// summaries per iteration like the report reduction (annualized, op,
// emb). util::summarize now sorts once and reads every order statistic
// from the sorted copy instead of re-copying and re-sorting per
// percentile (plus separate min/max scans); the outputs are
// bit-identical (stats_test pins every field against the independent
// computations), only the redundant O(n log n) passes are gone.
void BM_SweepReduceSummaries(benchmark::State& state) {
  std::vector<double> cells(4096);
  for (size_t i = 0; i < cells.size(); ++i) {
    cells[i] = static_cast<double>((i * 7919) % 4096) * 0.5;
  }
  for (auto _ : state) {
    auto a = easyc::util::summarize(cells);
    auto b = easyc::util::summarize(cells);
    auto c = easyc::util::summarize(cells);
    benchmark::DoNotOptimize(&a);
    benchmark::DoNotOptimize(&b);
    benchmark::DoNotOptimize(&c);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(3 * cells.size()));
}
BENCHMARK(BM_SweepReduceSummaries)->Unit(benchmark::kMicrosecond);

// The streaming counterpart: the same three distributions reduced
// through util::StreamingSummary (Welford moments + P² quantiles, the
// O(1)-memory mode big sweeps switch to) instead of store-all + sort.
// Comparing against BM_SweepReduceSummaries shows what a cell costs in
// each mode — streaming trades the terminal O(n log n) sort for
// constant per-cell marker updates.
void BM_SweepReduceStreaming(benchmark::State& state) {
  std::vector<double> cells(4096);
  for (size_t i = 0; i < cells.size(); ++i) {
    cells[i] = static_cast<double>((i * 7919) % 4096) * 0.5;
  }
  for (auto _ : state) {
    easyc::util::StreamingSummary a, b, c;
    for (const double x : cells) {
      a.add(x);
      b.add(x);
      c.add(x);
    }
    auto sa = a.summary();
    auto sb = b.summary();
    auto sc = c.summary();
    benchmark::DoNotOptimize(&sa);
    benchmark::DoNotOptimize(&sb);
    benchmark::DoNotOptimize(&sc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(3 * cells.size()));
}
BENCHMARK(BM_SweepReduceStreaming)->Unit(benchmark::kMicrosecond);

// Warm grid with the per-cell CSV sink attached: the marginal cost of
// --cells-out on top of the assessment (string formatting + quoting).
void BM_SweepWarmGridCsvExport(benchmark::State& state) {
  const auto spec = SweepSpec::parse(kGridSpec);
  AssessmentEngine engine;
  SweepEngine::Options opt;
  opt.engine = &engine;
  SweepEngine sweep(opt);
  sweep.run(records500(), spec);  // prime
  for (auto _ : state) {
    std::ostringstream csv;
    easyc::analysis::CsvCellSink sink(csv);
    auto report = sweep.run(records500(), spec, &sink);
    benchmark::DoNotOptimize(&report);
    benchmark::DoNotOptimize(&csv);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(spec.total_cells()));
}
BENCHMARK(BM_SweepWarmGridCsvExport)->Unit(benchmark::kMillisecond);

// Seeded Monte-Carlo arm: 64 prior draws, cold. Dominated by model
// evaluations (every draw is a distinct fingerprint).
void BM_SweepMonteCarlo64(benchmark::State& state) {
  const auto spec = SweepSpec::parse("mc=64@42");
  for (auto _ : state) {
    SweepEngine sweep;
    auto report = sweep.run(records500(), spec);
    benchmark::DoNotOptimize(&report);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(spec.total_cells()));
}
BENCHMARK(BM_SweepMonteCarlo64)->Unit(benchmark::kMillisecond);

}  // namespace

EASYC_FIGURE_BENCH_MAIN(sweep_report())
