// Fig. 5 — Operational coverage across rank ranges, two data scenarios.
#include "bench/common.hpp"
#include "analysis/coverage.hpp"
#include "report/experiments.hpp"

namespace {

using easyc::bench::shared_pipeline;

void BM_CoverageByRange(benchmark::State& state) {
  const auto& r = shared_pipeline();
  for (auto _ : state) {
    auto ranges = easyc::analysis::coverage_by_range(
        r.records, r.baseline().assessments, /*operational_side=*/true);
    benchmark::DoNotOptimize(ranges.data());
  }
}
BENCHMARK(BM_CoverageByRange);

}  // namespace

EASYC_FIGURE_BENCH_MAIN(
    easyc::report::fig05_op_coverage_ranges(shared_pipeline()))
