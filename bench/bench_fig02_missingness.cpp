// Fig. 2 — Structural information reported for Top500 data items.
#include "bench/common.hpp"
#include "analysis/coverage.hpp"
#include "report/experiments.hpp"
#include "top500/generator.hpp"

namespace {

using easyc::bench::shared_pipeline;

void BM_GenerateList(benchmark::State& state) {
  for (auto _ : state) {
    auto list = easyc::top500::generate_list();
    benchmark::DoNotOptimize(list.records.data());
  }
}
BENCHMARK(BM_GenerateList)->Unit(benchmark::kMillisecond);

void BM_Fig2Histogram(benchmark::State& state) {
  const auto& r = shared_pipeline();
  for (auto _ : state) {
    auto hist = easyc::analysis::fig2_histogram(r.records);
    benchmark::DoNotOptimize(hist.data());
  }
}
BENCHMARK(BM_Fig2Histogram);

void BM_DatasetCsvRoundTrip(benchmark::State& state) {
  const auto& r = shared_pipeline();
  for (auto _ : state) {
    auto csv = easyc::top500::to_csv(r.records);
    auto back = easyc::top500::from_csv(csv);
    benchmark::DoNotOptimize(back.data());
  }
}
BENCHMARK(BM_DatasetCsvRoundTrip)->Unit(benchmark::kMillisecond);

}  // namespace

EASYC_FIGURE_BENCH_MAIN(easyc::report::fig02_missingness(shared_pipeline()))
