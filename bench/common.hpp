// Shared infrastructure for the benchmark harness.
//
// Every bench binary regenerates one paper table/figure: it first prints
// the reproduced figure (with paper-vs-measured annotations) and then
// runs google-benchmark timings of the pipeline stages that produce it.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "analysis/pipeline.hpp"

namespace easyc::bench {

/// Pipeline result shared by all benchmarks in a binary (computed once;
/// the figures are deterministic).
inline const analysis::PipelineResult& shared_pipeline() {
  static const analysis::PipelineResult kResult = analysis::run_pipeline();
  return kResult;
}

/// Print the reproduced figure, then hand control to google-benchmark.
inline int figure_bench_main(int argc, char** argv,
                             const std::string& report) {
  std::fputs(report.c_str(), stdout);
  std::fputs("\n", stdout);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

}  // namespace easyc::bench

#define EASYC_FIGURE_BENCH_MAIN(REPORT_EXPR)                            \
  int main(int argc, char** argv) {                                     \
    const auto& pipeline_result = ::easyc::bench::shared_pipeline();    \
    (void)pipeline_result;                                              \
    return ::easyc::bench::figure_bench_main(argc, argv, (REPORT_EXPR)); \
  }
