// Fig. 11 — Projected performance-to-carbon ratio vs the Dennard-era
// ideal (2x per 18 months).
#include "bench/common.hpp"
#include "analysis/projection.hpp"
#include "report/experiments.hpp"

namespace {

using easyc::bench::shared_pipeline;

void BM_ProjectLongHorizon(benchmark::State& state) {
  easyc::analysis::ProjectionConfig cfg;
  cfg.end_year = 2050;  // stress the exponential math
  for (auto _ : state) {
    auto p = easyc::analysis::project(1390, 1880, 9500, cfg);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_ProjectLongHorizon);

}  // namespace

EASYC_FIGURE_BENCH_MAIN(
    easyc::report::fig11_perf_per_carbon(shared_pipeline()))
