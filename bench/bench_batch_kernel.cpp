// The SoA batch assessment kernel vs the scalar per-cell path.
//
// Report: cold assessment on one worker under two workload shapes —
// the stock scenario set (paper pair + what-ifs, three visibilities)
// and a sweep-shaped block (12 derived what-ifs over one visibility,
// what SweepEngine submits per batch). The SoA kernel resolves each
// distinct (visibility, record) profile once and amortizes it across
// every scenario lane, so the sweep shape is where the win lands; the
// stock set bounds the worst case (2.5 lanes per profile). The ACI
// hoist is also run disabled so its contribution is measured, not
// asserted. Both kernels are byte-identical per cell
// (batch_kernel_test), so these numbers can only disagree on time.
//
// The gated pair (check_bench_regression: SoA >= 1.5x scalar
// cells_per_s) runs the sweep-shaped block — the engine's cold fill
// workload in the paper pipeline's sweeps.
#include "bench/common.hpp"

#include <chrono>
#include <functional>
#include <string>

#include "analysis/assessment_engine.hpp"
#include "parallel/thread_pool.hpp"
#include "top500/generator.hpp"
#include "util/strings.hpp"

namespace {

using easyc::analysis::AssessmentEngine;
using easyc::analysis::ScenarioSet;
using easyc::analysis::ScenarioSpec;
using easyc::util::format_double;
namespace sc = easyc::analysis::scenarios;
using BatchKernel = AssessmentEngine::BatchKernel;

const std::vector<easyc::top500::SystemRecord>& catalog() {
  static const auto kRecords = easyc::top500::generate_records();
  return kRecords;
}

const ScenarioSet& stock_set() {
  static const ScenarioSet kSet = ScenarioSet::paper_with_whatifs();
  return kSet;
}

// A sweep block: derived what-ifs over the enhanced visibility, the
// shape SweepEngine submits to the engine (grid axes fab x pue x util;
// no ACI override, so lanes read the grid database and the per-batch
// ACI table is live in the gated workload).
const ScenarioSet& sweep_block() {
  static const ScenarioSet kSet = [] {
    ScenarioSet set;
    int n = 0;
    for (double fab : {0.3, 0.475, 0.65}) {
      for (double pue : {1.15, 1.45}) {
        for (double util : {0.6, 0.9}) {
          ScenarioSpec spec = sc::enhanced();
          spec.name = "sweep/" + std::to_string(n++);
          spec.fab_aci_kg_kwh = fab;
          spec.pue_override = pue;
          spec.default_utilization = util;
          set.add(spec);
        }
      }
    }
    return set;
  }();
  return kSet;
}

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

// Mean cold time of one engine.assess over `set`, plus kernel stats.
double cold_seconds(const ScenarioSet& set, BatchKernel kernel, bool hoist,
                    easyc::par::ThreadPool& pool, int reps,
                    easyc::model::BatchStats* stats = nullptr) {
  double total = 0.0;
  easyc::model::BatchStats acc;
  for (int i = 0; i < reps; ++i) {
    AssessmentEngine engine({.pool = &pool,
                             .cache_enabled = false,
                             .batch_kernel = kernel,
                             .batch_hoist_aci = hoist});
    total += seconds_of([&] { engine.assess(catalog(), set); });
    acc += engine.batch_stats();
  }
  if (stats) *stats = acc;
  return total / reps;
}

std::string workload_table(const std::string& title, const ScenarioSet& set,
                           easyc::par::ThreadPool& pool, int reps) {
  const double cells = static_cast<double>(catalog().size()) *
                       static_cast<double>(set.size());
  easyc::model::BatchStats stats;
  const double t_scalar =
      cold_seconds(set, BatchKernel::kScalar, true, pool, reps);
  const double t_soa =
      cold_seconds(set, BatchKernel::kSoa, true, pool, reps, &stats);
  const double t_no_hoist =
      cold_seconds(set, BatchKernel::kSoa, false, pool, reps);

  const auto line = [&](const std::string& label, double t) {
    return "    " + label + format_double(t * 1e3, 2) + " ms  (" +
           format_double(cells / t / 1e3, 1) + "k cells/s, " +
           format_double(t_scalar / t, 2) + "x scalar)\n";
  };
  std::string out = "  " + title + " — " + format_double(cells, 0) +
                    " cells, mean of " + std::to_string(reps) + "\n";
  out += line("scalar per-cell oracle: ", t_scalar);
  out += line("SoA kernel:             ", t_soa);
  out += line("SoA, ACI hoist off:     ", t_no_hoist);
  out += "    ACI hoist delta: " +
         format_double((t_no_hoist - t_soa) * 1e3, 2) + " ms/run (" +
         format_double((t_no_hoist / t_soa - 1.0) * 100, 1) +
         "% on top of the hoisted kernel)\n";
  const int r = reps;
  out += "    per run: " + std::to_string(stats.lanes / r) + " lanes from " +
         std::to_string(stats.profiles / r) + " resolved profiles (" +
         std::to_string(stats.validations / r) + " validations); ACI " +
         std::to_string(stats.aci_keys / r) + " keys, " +
         std::to_string(stats.aci_db_queries / r) + " db queries, " +
         std::to_string(stats.aci_hoisted / r) + " lane lookups hoisted\n";
  return out;
}

std::string kernel_report() {
  easyc::par::ThreadPool one(1);
  std::string out = "Batch kernel — catalog, cold, 1 worker\n";
  out += workload_table("sweep-shaped block (12 derived scenarios)",
                        sweep_block(), one, 5);
  out += workload_table("stock scenario set (3 visibilities)", stock_set(),
                        one, 5);
  out += "  target: >=1.5x scalar on the sweep-shaped block (the gated "
         "pair below)\n";
  return out;
}

// Cold fill throughput of one kernel on the sweep-shaped block: fresh
// no-cache engine, so every cell computes through the selected path.
// cells_per_s is the gated counter (check_bench_regression enforces
// BM_BatchAssessSoA >= 1.5x BM_BatchAssessScalar).
void bench_kernel(benchmark::State& state, BatchKernel kernel, bool hoist) {
  easyc::par::ThreadPool one(1);
  const ScenarioSet& set = sweep_block();
  const int64_t cells = static_cast<int64_t>(catalog().size()) *
                        static_cast<int64_t>(set.size());
  for (auto _ : state) {
    AssessmentEngine engine({.pool = &one,
                             .cache_enabled = false,
                             .batch_kernel = kernel,
                             .batch_hoist_aci = hoist});
    auto r = engine.assess(catalog(), set);
    benchmark::DoNotOptimize(&r);
  }
  state.SetItemsProcessed(state.iterations() * cells);
  state.counters["cells_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * cells),
      benchmark::Counter::kIsRate);
}

void BM_BatchAssessScalar(benchmark::State& state) {
  bench_kernel(state, BatchKernel::kScalar, true);
}
BENCHMARK(BM_BatchAssessScalar)->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_BatchAssessSoA(benchmark::State& state) {
  bench_kernel(state, BatchKernel::kSoa, true);
}
BENCHMARK(BM_BatchAssessSoA)->UseRealTime()->Unit(benchmark::kMillisecond);

// The hoist ablation at bench granularity, for the A/B delta in JSON.
void BM_BatchAssessSoANoHoist(benchmark::State& state) {
  bench_kernel(state, BatchKernel::kSoa, false);
}
BENCHMARK(BM_BatchAssessSoANoHoist)->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace

EASYC_FIGURE_BENCH_MAIN(kernel_report())
