// Fig. 8 — Full Top500 carbon vs rank after interpolation.
#include "bench/common.hpp"
#include "analysis/pipeline.hpp"
#include "report/experiments.hpp"

namespace {

using easyc::bench::shared_pipeline;

void BM_FullPipeline(benchmark::State& state) {
  for (auto _ : state) {
    auto r = easyc::analysis::run_pipeline();
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(BM_FullPipeline)->Unit(benchmark::kMillisecond);

}  // namespace

EASYC_FIGURE_BENCH_MAIN(
    easyc::report::fig08_full_assessment(shared_pipeline()))
