// The multi-edition assessment engine: editions x scenarios throughput
// and the measured value of the per-record memo cache.
//
// Report: an 8-edition history assessed three ways on one worker —
// the no-cache serial loop (the pre-engine baseline), the engine with
// a cold cache (intra-history memoization only), and the engine warm
// (everything served from cache). The ISSUE target is >3x for the
// cached engine over the serial loop on 1 core; the report prints the
// measured ratio and the hit rates so the speedup is measurable, not
// asserted.
#include "bench/common.hpp"

#include <chrono>
#include <cstdio>
#include <functional>

#include "analysis/turnover.hpp"
#include "parallel/thread_pool.hpp"
#include "util/strings.hpp"

namespace {

using easyc::analysis::AssessmentEngine;
using easyc::analysis::TurnoverOptions;
using easyc::util::format_double;

const std::vector<easyc::top500::ListEdition>& history8() {
  static const auto kHistory = [] {
    easyc::top500::HistoryConfig cfg;
    cfg.editions = 8;
    return easyc::top500::generate_history(cfg);
  }();
  return kHistory;
}

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

std::string engine_report() {
  std::string out =
      "Multi-edition engine — 8 editions, enhanced scenario, 1 worker\n";
  easyc::par::ThreadPool one(1);

  TurnoverOptions no_cache;
  no_cache.pool = &one;
  no_cache.use_cache = false;
  const double t_serial = seconds_of(
      [&] { easyc::analysis::analyze_turnover(history8(), no_cache); });

  AssessmentEngine engine({.pool = &one});
  TurnoverOptions cached;
  cached.engine = &engine;
  double cold_rate = 0.0;
  const double t_cold = seconds_of([&] {
    cold_rate =
        easyc::analysis::analyze_turnover(history8(), cached).cache.hit_rate();
  });
  double warm_rate = 0.0;
  const double t_warm = seconds_of([&] {
    warm_rate =
        easyc::analysis::analyze_turnover(history8(), cached).cache.hit_rate();
  });

  // The cross-process warm start: persist the warm cache, load it into
  // a fresh engine (a new CLI invocation), and re-run the analysis.
  const std::string snapshot_path = "bench_engine_cache_snapshot.bin";
  engine.save_cache(snapshot_path);
  AssessmentEngine restored({.pool = &one});
  TurnoverOptions from_disk;
  from_disk.engine = &restored;
  double disk_rate = 0.0;
  const double t_disk = seconds_of([&] {
    restored.load_cache(snapshot_path);
    disk_rate = easyc::analysis::analyze_turnover(history8(), from_disk)
                    .cache.hit_rate();
  });
  std::remove(snapshot_path.c_str());

  out += "  no-cache serial loop: " + format_double(t_serial * 1000, 1) +
         " ms\n";
  out += "  engine, cold cache:   " + format_double(t_cold * 1000, 1) +
         " ms (" + format_double(cold_rate * 100, 1) + "% hits, " +
         format_double(t_serial / t_cold, 2) + "x)\n";
  out += "  engine, warm cache:   " + format_double(t_warm * 1000, 1) +
         " ms (" + format_double(warm_rate * 100, 1) + "% hits, " +
         format_double(t_serial / t_warm, 2) + "x)\n";
  out += "  fresh engine, disk snapshot (load + run): " +
         format_double(t_disk * 1000, 1) + " ms (" +
         format_double(disk_rate * 100, 1) + "% hits, " +
         format_double(t_serial / t_disk, 2) + "x)\n";
  out += "  target: >3x for the cached engine on 1 core\n";
  return out;
}

// editions x scenarios throughput: cells assessed per run, swept over
// the edition count. A fresh engine per iteration = cold cache.
void BM_EngineColdHistory(benchmark::State& state) {
  easyc::top500::HistoryConfig cfg;
  cfg.editions = static_cast<int>(state.range(0));
  const auto history = easyc::top500::generate_history(cfg);
  const auto scenarios = easyc::analysis::ScenarioSet::paper();
  for (auto _ : state) {
    AssessmentEngine engine;
    auto r = engine.run(history, scenarios);
    benchmark::DoNotOptimize(&r);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cfg.editions) * 500 *
                          static_cast<int64_t>(scenarios.size()));
}
BENCHMARK(BM_EngineColdHistory)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Warm engine: every cell is a lookup. This is the steady-state cost
// of re-running an unchanged history (e.g. sweeping interpolation or
// projection knobs on top of cached assessments).
void BM_EngineWarmHistory(benchmark::State& state) {
  easyc::top500::HistoryConfig cfg;
  cfg.editions = static_cast<int>(state.range(0));
  const auto history = easyc::top500::generate_history(cfg);
  const auto scenarios = easyc::analysis::ScenarioSet::paper();
  AssessmentEngine engine;
  engine.run(history, scenarios);  // prime
  for (auto _ : state) {
    auto r = engine.run(history, scenarios);
    benchmark::DoNotOptimize(&r);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cfg.editions) * 500 *
                          static_cast<int64_t>(scenarios.size()));
}
BENCHMARK(BM_EngineWarmHistory)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// The ablation baseline at bench granularity: cache disabled entirely.
void BM_EngineNoCacheHistory(benchmark::State& state) {
  easyc::top500::HistoryConfig cfg;
  cfg.editions = static_cast<int>(state.range(0));
  const auto history = easyc::top500::generate_history(cfg);
  const auto scenarios = easyc::analysis::ScenarioSet::paper();
  for (auto _ : state) {
    AssessmentEngine engine({.cache_enabled = false});
    auto r = engine.run(history, scenarios);
    benchmark::DoNotOptimize(&r);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cfg.editions) * 500 *
                          static_cast<int64_t>(scenarios.size()));
}
BENCHMARK(BM_EngineNoCacheHistory)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Snapshot round-trip at cache-persistence granularity: serialize the
// warm ~836-entry memo table to a file and load it into a fresh
// engine. This is the fixed cost a CLI warm start pays before its
// pure-lookup run.
void BM_CacheSnapshotRoundTrip(benchmark::State& state) {
  easyc::top500::HistoryConfig cfg;
  cfg.editions = static_cast<int>(state.range(0));
  const auto history = easyc::top500::generate_history(cfg);
  const auto scenarios = easyc::analysis::ScenarioSet::paper();
  AssessmentEngine warm;
  warm.run(history, scenarios);
  const std::string path = "bench_cache_roundtrip.bin";
  for (auto _ : state) {
    warm.save_cache(path);
    AssessmentEngine fresh;
    const size_t n = fresh.load_cache(path);
    benchmark::DoNotOptimize(n);
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<int64_t>(warm.cache_stats().entries));
}
BENCHMARK(BM_CacheSnapshotRoundTrip)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

EASYC_FIGURE_BENCH_MAIN(engine_report())
