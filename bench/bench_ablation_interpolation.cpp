// Ablation — interpolation design (DESIGN.md choice #1).
//
// The paper fills gaps with the mean of the nearest 10 peers (5 per
// side). This study sweeps the window width and the peer statistic and
// reports how the full-500 totals move, quantifying how much the
// published totals depend on that choice.
#include "bench/common.hpp"

#include <string>
#include <vector>

#include "analysis/interpolate.hpp"
#include "util/ascii.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace {

using easyc::analysis::InterpolationOptions;
using easyc::analysis::InterpolationStrategy;
using easyc::bench::shared_pipeline;

std::string strategy_name(InterpolationStrategy s) {
  switch (s) {
    case InterpolationStrategy::kMean: return "mean";
    case InterpolationStrategy::kMedian: return "median";
    case InterpolationStrategy::kRankWeighted: return "rank-weighted";
  }
  return "?";
}

std::string ablation_report() {
  const auto& r = shared_pipeline();
  std::string out =
      "Ablation — interpolation window and strategy (paper: mean of "
      "nearest 10 peers)\n";
  easyc::util::TextTable t(
      {"Strategy", "Peers/side", "Op total (kMT)", "Emb total (kMT)",
       "Emb delta vs paper-method (%)"});

  InterpolationOptions paper_opt;  // 5 per side, mean
  const double ref_emb = easyc::util::sum(
      easyc::analysis::interpolate_gaps(r.enhanced().embodied, paper_opt)
          .values);

  for (auto strategy :
       {InterpolationStrategy::kMean, InterpolationStrategy::kMedian,
        InterpolationStrategy::kRankWeighted}) {
    for (int peers : {1, 2, 5, 10, 25}) {
      InterpolationOptions opt;
      opt.strategy = strategy;
      opt.peers_per_side = peers;
      const double op = easyc::util::sum(
          easyc::analysis::interpolate_gaps(r.enhanced().operational, opt)
              .values);
      const double emb = easyc::util::sum(
          easyc::analysis::interpolate_gaps(r.enhanced().embodied, opt)
              .values);
      t.add_row({strategy_name(strategy), std::to_string(peers),
                 easyc::util::format_double(op / 1000.0, 1),
                 easyc::util::format_double(emb / 1000.0, 1),
                 easyc::util::format_double((emb - ref_emb) / ref_emb * 100,
                                            2)});
    }
  }
  out += t.render();
  out +=
      "  Reading: the operational total is insensitive (only 10 small gaps)"
      ";\n  the embodied total moves a few percent with the window because "
      "96 gaps\n  include large top-ranked systems whose peers differ in "
      "scale.\n";
  return out;
}

void BM_Interpolate_Window(benchmark::State& state) {
  const auto& r = shared_pipeline();
  InterpolationOptions opt;
  opt.peers_per_side = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto filled = easyc::analysis::interpolate_gaps(r.enhanced().embodied, opt);
    benchmark::DoNotOptimize(filled.values.data());
  }
}
BENCHMARK(BM_Interpolate_Window)->Arg(1)->Arg(5)->Arg(25);

}  // namespace

EASYC_FIGURE_BENCH_MAIN(ablation_report())
