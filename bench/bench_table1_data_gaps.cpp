// Table I — EasyC-required data unavailable on Top500.org and in other
// public sources.
#include "bench/common.hpp"
#include "analysis/coverage.hpp"
#include "report/experiments.hpp"

namespace {

using easyc::bench::shared_pipeline;

void BM_Table1Audit(benchmark::State& state) {
  const auto& r = shared_pipeline();
  for (auto _ : state) {
    auto t500 = easyc::analysis::table1_gaps(
        r.records, easyc::top500::DataVisibility::kTop500Org);
    auto pub = easyc::analysis::table1_gaps(
        r.records, easyc::top500::DataVisibility::kTop500PlusPublic);
    benchmark::DoNotOptimize(t500.data());
    benchmark::DoNotOptimize(pub.data());
  }
}
BENCHMARK(BM_Table1Audit);

}  // namespace

EASYC_FIGURE_BENCH_MAIN(easyc::report::table1_data_gaps(shared_pipeline()))
