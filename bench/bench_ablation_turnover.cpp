// Ablation — deriving the projection growth rates from list turnover.
//
// The paper's Fig. 10 growth rates (10.3%/yr operational, 2%/yr
// embodied) come from observed list dynamics: ~48 new systems per
// cycle adding 5%/1% per cycle. This bench simulates five list
// editions, *measures* those rates from the simulated history, and
// sweeps the turnover assumptions.
#include "bench/common.hpp"

#include "analysis/turnover.hpp"
#include "util/ascii.hpp"
#include "util/strings.hpp"

namespace {

using easyc::util::format_double;

std::string ablation_report() {
  std::string out =
      "Ablation — growth rates derived from simulated list turnover\n";

  easyc::top500::HistoryConfig cfg;
  cfg.editions = 5;
  const auto history = easyc::top500::generate_history(cfg);
  const auto report = easyc::analysis::analyze_turnover(history);

  easyc::util::TextTable t({"Edition", "New systems", "Op total (kMT)",
                            "Emb total (kMT)", "Perf (PFlop/s)"});
  for (const auto& e : report.editions) {
    t.add_row({e.label, std::to_string(e.num_new),
               format_double(e.op_total_mt / 1000.0, 0),
               format_double(e.emb_total_mt / 1000.0, 0),
               format_double(e.perf_pflops, 0)});
  }
  out += t.render();
  out += "\nMeasured growth (paper values in parentheses):\n";
  out += "  new systems per cycle: " +
         format_double(report.avg_new_per_cycle, 1) + " (48)\n";
  out += "  operational per cycle: " +
         format_double(report.op_growth_per_cycle * 100, 2) + "% (5%)\n";
  out += "  embodied per cycle:    " +
         format_double(report.emb_growth_per_cycle * 100, 2) + "% (1%)\n";
  out += "  operational per year:  " +
         format_double(report.op_growth_annualized * 100, 2) +
         "% (10.3%)\n";
  out += "  embodied per year:     " +
         format_double(report.emb_growth_annualized * 100, 2) + "% (2%)\n";

  out += "\nTurnover-rate sweep (entrants per cycle -> annualized op "
         "growth):\n";
  easyc::util::TextTable sweep({"Entrants/cycle", "Op %/yr", "Emb %/yr"});
  for (int entrants : {12, 24, 48, 96}) {
    easyc::top500::HistoryConfig scfg;
    scfg.editions = 4;
    scfg.entrants_per_cycle = entrants;
    const auto srep =
        easyc::analysis::analyze_turnover(easyc::top500::generate_history(scfg));
    sweep.add_row({std::to_string(entrants),
                   format_double(srep.op_growth_annualized * 100, 2),
                   format_double(srep.emb_growth_annualized * 100, 2)});
  }
  out += sweep.render();
  out += "  Reading: operational growth scales with turnover because each "
         "entrant\n  cohort is larger but only modestly more efficient — "
         "the paper's post-\n  Dennard argument.\n";
  return out;
}

void BM_GenerateHistory(benchmark::State& state) {
  easyc::top500::HistoryConfig cfg;
  cfg.editions = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto h = easyc::top500::generate_history(cfg);
    benchmark::DoNotOptimize(h.data());
  }
}
BENCHMARK(BM_GenerateHistory)->Arg(2)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_AnalyzeTurnover(benchmark::State& state) {
  easyc::top500::HistoryConfig cfg;
  cfg.editions = 3;
  static const auto history = easyc::top500::generate_history(cfg);
  for (auto _ : state) {
    auto r = easyc::analysis::analyze_turnover(history);
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(BM_AnalyzeTurnover)->Unit(benchmark::kMillisecond);

}  // namespace

EASYC_FIGURE_BENCH_MAIN(ablation_report())
