// Ablation — deriving the projection growth rates from list turnover.
//
// The paper's Fig. 10 growth rates (10.3%/yr operational, 2%/yr
// embodied) come from observed list dynamics: ~48 new systems per
// cycle adding 5%/1% per cycle. This bench simulates five list
// editions, *measures* those rates from the simulated history (on the
// memoized assessment engine), and sweeps the turnover assumptions.
// The no-cache arm re-assesses every edition from scratch — the
// pre-engine serial behaviour, kept as the explicit ablation baseline.
#include "bench/common.hpp"

#include "analysis/turnover.hpp"
#include "report/experiments.hpp"
#include "util/ascii.hpp"
#include "util/strings.hpp"

namespace {

using easyc::util::format_double;

std::string ablation_report() {
  std::string out =
      "Ablation — growth rates derived from simulated list turnover\n";

  easyc::top500::HistoryConfig cfg;
  cfg.editions = 5;
  const auto history = easyc::top500::generate_history(cfg);
  const auto report = easyc::analysis::analyze_turnover(history);
  out += easyc::report::turnover_summary(report);

  out += "\nTurnover-rate sweep (entrants per cycle -> annualized op "
         "growth):\n";
  easyc::util::TextTable sweep({"Entrants/cycle", "Op %/yr", "Emb %/yr"});
  for (int entrants : {12, 24, 48, 96}) {
    easyc::top500::HistoryConfig scfg;
    scfg.editions = 4;
    scfg.entrants_per_cycle = entrants;
    const auto srep =
        easyc::analysis::analyze_turnover(easyc::top500::generate_history(scfg));
    sweep.add_row({std::to_string(entrants),
                   format_double(srep.op_growth_annualized * 100, 2),
                   format_double(srep.emb_growth_annualized * 100, 2)});
  }
  out += sweep.render();
  out += "  Reading: operational growth scales with turnover because each "
         "entrant\n  cohort is larger but only modestly more efficient — "
         "the paper's post-\n  Dennard argument.\n";
  return out;
}

void BM_GenerateHistory(benchmark::State& state) {
  easyc::top500::HistoryConfig cfg;
  cfg.editions = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto h = easyc::top500::generate_history(cfg);
    benchmark::DoNotOptimize(h.data());
  }
}
BENCHMARK(BM_GenerateHistory)->Arg(2)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_AnalyzeTurnover(benchmark::State& state) {
  easyc::top500::HistoryConfig cfg;
  cfg.editions = 3;
  static const auto history = easyc::top500::generate_history(cfg);
  for (auto _ : state) {
    auto r = easyc::analysis::analyze_turnover(history);
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(BM_AnalyzeTurnover)->Unit(benchmark::kMillisecond);

// Ablation arm: the cache disabled, i.e. the pre-engine serial cost of
// re-assessing every record of every edition.
void BM_AnalyzeTurnoverNoCache(benchmark::State& state) {
  easyc::top500::HistoryConfig cfg;
  cfg.editions = 3;
  static const auto history = easyc::top500::generate_history(cfg);
  easyc::analysis::TurnoverOptions opts;
  opts.use_cache = false;
  for (auto _ : state) {
    auto r = easyc::analysis::analyze_turnover(history, opts);
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(BM_AnalyzeTurnoverNoCache)->Unit(benchmark::kMillisecond);

}  // namespace

EASYC_FIGURE_BENCH_MAIN(ablation_report())
