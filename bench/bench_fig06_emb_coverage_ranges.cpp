// Fig. 6 — Embodied coverage across rank ranges, two data scenarios.
#include "bench/common.hpp"
#include "analysis/coverage.hpp"
#include "easyc/embodied.hpp"
#include "report/experiments.hpp"

namespace {

using easyc::bench::shared_pipeline;

void BM_EmbodiedCoverageByRange(benchmark::State& state) {
  const auto& r = shared_pipeline();
  for (auto _ : state) {
    auto ranges = easyc::analysis::coverage_by_range(
        r.records, r.enhanced().assessments, /*operational_side=*/false);
    benchmark::DoNotOptimize(ranges.data());
  }
}
BENCHMARK(BM_EmbodiedCoverageByRange);

void BM_EmbodiedSingleAssessment(benchmark::State& state) {
  const auto& r = shared_pipeline();
  const auto in = easyc::top500::to_inputs(
      r.records[0], easyc::top500::DataVisibility::kTop500PlusPublic);
  for (auto _ : state) {
    auto b = easyc::model::assess_embodied(in);
    benchmark::DoNotOptimize(&b);
  }
}
BENCHMARK(BM_EmbodiedSingleAssessment);

}  // namespace

EASYC_FIGURE_BENCH_MAIN(
    easyc::report::fig06_emb_coverage_ranges(shared_pipeline()))
