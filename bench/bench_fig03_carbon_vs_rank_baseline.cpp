// Fig. 3 — Operational and embodied carbon vs rank, Top500.org data only.
#include "bench/common.hpp"
#include "analysis/scenario.hpp"
#include "report/experiments.hpp"

namespace {

using easyc::bench::shared_pipeline;

void BM_AssessBaselineScenario(benchmark::State& state) {
  const auto& r = shared_pipeline();
  const auto spec = easyc::analysis::scenarios::baseline();
  for (auto _ : state) {
    auto a = easyc::analysis::assess_scenario(r.records, spec);
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_AssessBaselineScenario)->Unit(benchmark::kMillisecond);

void BM_AssessSingleSystem(benchmark::State& state) {
  const auto& r = shared_pipeline();
  const auto in = easyc::top500::to_inputs(
      r.records[1], easyc::top500::DataVisibility::kTop500Org);  // Frontier
  const easyc::model::EasyCModel model;
  for (auto _ : state) {
    auto a = model.assess(in);
    benchmark::DoNotOptimize(&a);
  }
}
BENCHMARK(BM_AssessSingleSystem);

}  // namespace

EASYC_FIGURE_BENCH_MAIN(
    easyc::report::fig03_carbon_vs_rank_baseline(shared_pipeline()))
