// Fig. 9 — Per-system change between Baseline and Baseline+PublicInfo.
#include "bench/common.hpp"
#include "analysis/sensitivity.hpp"
#include "report/experiments.hpp"

namespace {

using easyc::bench::shared_pipeline;

void BM_SensitivityReport(benchmark::State& state) {
  const auto& r = shared_pipeline();
  for (auto _ : state) {
    auto s = easyc::analysis::sensitivity(r);
    benchmark::DoNotOptimize(&s);
  }
}
BENCHMARK(BM_SensitivityReport);

}  // namespace

EASYC_FIGURE_BENCH_MAIN(
    easyc::report::fig09_sensitivity_diff(shared_pipeline()))
