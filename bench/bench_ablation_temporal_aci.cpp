// Ablation — time granularity of grid carbon intensity.
//
// The paper names "inconsistent time granularity" of intensity data as a
// systematic GHG-accounting error. This bench quantifies it: for hourly
// profiles of several grid archetypes, how far off is the annual-average
// method EasyC uses, for flat and diurnal HPC loads — and how much could
// carbon-aware scheduling recover.
#include "bench/common.hpp"

#include "grid/temporal.hpp"
#include "util/ascii.hpp"
#include "util/strings.hpp"

namespace {

using easyc::grid::HourlyAciProfile;
using easyc::grid::ProfileShape;
using easyc::util::format_double;

std::string ablation_report() {
  std::string out =
      "Ablation — annual-average vs hourly carbon intensity\n";

  struct GridArchetype {
    const char* label;
    double mean;
    ProfileShape shape;
  };
  const GridArchetype grids[] = {
      {"solar-heavy (California-like)", 239, {0.35, 0.18, 0.06, 0.05}},
      {"coal-baseload (Wyoming-like)", 791, {0.02, 0.04, 0.08, 0.03}},
      {"hydro (Norway-like)", 29, {0.0, 0.02, 0.12, 0.02}},
      {"mixed (Germany-like)", 344, {0.20, 0.12, 0.15, 0.06}},
  };

  easyc::util::TextTable t(
      {"Grid", "Avg-method error, flat load (%)",
       "Avg-method error, diurnal load (%)",
       "Shift savings, 30% x 8h (%)"});
  for (const auto& g : grids) {
    HourlyAciProfile p(g.mean, g.shape);
    const auto flat = std::vector<double>{1000.0};
    const auto diurnal = easyc::grid::diurnal_load(1000.0, 0.4);
    t.add_row({g.label,
               format_double(p.average_method_error(flat) * 100, 3),
               format_double(p.average_method_error(diurnal) * 100, 2),
               format_double(p.shifting_savings(0.30, 8) * 100, 2)});
  }
  out += t.render();
  out +=
      "  Reading: for the near-flat loads of busy HPC systems the annual-"
      "average\n  method EasyC uses is exact — the granularity error the "
      "paper warns about\n  only bites for strongly diurnal loads on "
      "solar-heavy grids.\n";
  return out;
}

void BM_BuildHourlyProfile(benchmark::State& state) {
  for (auto _ : state) {
    HourlyAciProfile p(400.0);
    benchmark::DoNotOptimize(p.hours().data());
  }
}
BENCHMARK(BM_BuildHourlyProfile);

void BM_HourlyCarbon(benchmark::State& state) {
  HourlyAciProfile p(400.0);
  const auto load = easyc::grid::diurnal_load(1000.0, 0.4);
  for (auto _ : state) {
    double mt = p.carbon_mt(load);
    benchmark::DoNotOptimize(mt);
  }
}
BENCHMARK(BM_HourlyCarbon);

void BM_ShiftingSavings(benchmark::State& state) {
  HourlyAciProfile p(400.0);
  for (auto _ : state) {
    double s = p.shifting_savings(0.3, 8);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_ShiftingSavings);

}  // namespace

EASYC_FIGURE_BENCH_MAIN(ablation_report())
