// Table II — Per-system operational and embodied carbon under the three
// data scenarios (appendix table; first 40 rows printed here, the full
// 500 emitted as CSV by report::write_figure_csvs).
#include "bench/common.hpp"
#include "report/experiments.hpp"

namespace {

using easyc::bench::shared_pipeline;

void BM_RenderTable2(benchmark::State& state) {
  const auto& r = shared_pipeline();
  for (auto _ : state) {
    auto text = easyc::report::table2_per_system(r, 0);
    benchmark::DoNotOptimize(text.data());
  }
}
BENCHMARK(BM_RenderTable2)->Unit(benchmark::kMillisecond);

}  // namespace

EASYC_FIGURE_BENCH_MAIN(easyc::report::table2_per_system(shared_pipeline(),
                                                         40))
